"""Bag-of-Patterns baseline (Lin, Khade & Li, 2012).

The structure-based classifier that preceded SAX-VSM: every series
becomes a histogram over its SAX words (sliding window + numerosity
reduction) and classification is nearest-neighbour between histograms.
Included as the simplest member of the SAX-word family the paper's
related work (§2.2, [21]) situates RPM in — useful as an ablation
anchor: RPM ≥ SAX-VSM ≥ BOP on data whose signal is localized.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, keyword_only
from ..sax.discretize import SaxParams, discretize

__all__ = ["BagOfPatternsClassifier"]


class BagOfPatternsClassifier(BaseEstimator):
    """1-NN over SAX-word histograms.

    Parameters
    ----------
    params:
        SAX parameters for the word extraction (required,
        keyword-only).
    metric:
        ``'euclidean'`` on raw counts or ``'cosine'`` similarity.
    """

    @keyword_only("params", "metric")
    def __init__(self, *, params: SaxParams, metric: str = "euclidean") -> None:
        if metric not in ("euclidean", "cosine"):
            raise ValueError(f"metric must be euclidean or cosine, got {metric!r}")
        self.params = params
        self.metric = metric
        self.vocabulary_: dict[str, int] = {}
        self.train_histograms_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    def _bag(self, series: np.ndarray) -> dict[str, int]:
        record = discretize(np.asarray(series, dtype=float), self.params)
        bag: dict[str, int] = {}
        for word in record.words:
            bag[word] = bag.get(word, 0) + 1
        return bag

    def _vectorize(self, bags: list[dict[str, int]]) -> np.ndarray:
        out = np.zeros((len(bags), len(self.vocabulary_)))
        for i, bag in enumerate(bags):
            for word, count in bag.items():
                j = self.vocabulary_.get(word)
                if j is not None:
                    out[i, j] = count
        return out

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BagOfPatternsClassifier":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of instances")
        bags = [self._bag(row) for row in X]
        vocabulary = sorted({word for bag in bags for word in bag})
        self.vocabulary_ = {word: i for i, word in enumerate(vocabulary)}
        self.train_histograms_ = self._vectorize(bags)
        self.y_ = y
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Histogram representation of new series over the train vocabulary."""
        if self.train_histograms_ is None:
            raise RuntimeError("classifier used before fit()")
        return self._vectorize([self._bag(row) for row in np.asarray(X, dtype=float)])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        if self.train_histograms_ is None or self.y_ is None:
            raise RuntimeError("classifier used before fit()")
        queries = self.transform(X)
        train = self.train_histograms_
        if self.metric == "euclidean":
            d2 = (
                np.sum(queries**2, axis=1)[:, None]
                + np.sum(train**2, axis=1)[None, :]
                - 2.0 * queries @ train.T
            )
            nearest = np.argmin(d2, axis=1)
        else:
            qn = np.linalg.norm(queries, axis=1, keepdims=True)
            tn = np.linalg.norm(train, axis=1, keepdims=True)
            qn[qn < 1e-12] = 1.0
            tn[tn < 1e-12] = 1.0
            similarity = (queries / qn) @ (train / tn).T
            nearest = np.argmax(similarity, axis=1)
        return self.y_[nearest]
