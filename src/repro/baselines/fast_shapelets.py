"""Fast Shapelets baseline (Rakthanmanon & Keogh, SDM 2013).

FS builds a shapelet *decision tree*, but instead of scoring every
subsequence exhaustively it (i) discretizes candidate subsequences with
SAX, (ii) hashes the words under random masking ("random projection")
so similar words collide, (iii) scores words by how asymmetrically
their collisions distribute over the classes, and only for the top-k
words (iv) computes true information gain on the raw distances.

This reproduction keeps that exact pipeline (SAX word length 16,
alphabet 4, masked random projection, top-k refinement, binary IG
split) with one simplification: candidate subsequences are taken on a
stride so the candidate pool stays proportional to the training size.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..base import BaseEstimator, keyword_only
from ..distance.best_match import best_match
from ..sax.sax import sax_word
from ..sax.znorm import znorm_rows

__all__ = ["FastShapeletsClassifier", "information_gain"]

SAX_WORD_LENGTH = 16
SAX_ALPHABET = 4


def entropy(labels: np.ndarray) -> float:
    """Shannon entropy (bits) of a label array."""
    _, counts = np.unique(labels, return_counts=True)
    p = counts / labels.size
    return float(-np.sum(p * np.log2(p)))


def information_gain(labels: np.ndarray, distances: np.ndarray, threshold: float) -> float:
    """IG of splitting *labels* by ``distance <= threshold``."""
    left = labels[distances <= threshold]
    right = labels[distances > threshold]
    if left.size == 0 or right.size == 0:
        return 0.0
    n = labels.size
    return entropy(labels) - (
        left.size / n * entropy(left) + right.size / n * entropy(right)
    )


def _best_split(labels: np.ndarray, distances: np.ndarray) -> tuple[float, float]:
    """Best (gain, threshold) over the midpoints of sorted distances."""
    order = np.argsort(distances)
    sorted_d = distances[order]
    best_gain, best_thr = -1.0, 0.0
    for i in range(sorted_d.size - 1):
        if sorted_d[i] == sorted_d[i + 1]:
            continue
        thr = 0.5 * (sorted_d[i] + sorted_d[i + 1])
        gain = information_gain(labels, distances, thr)
        if gain > best_gain:
            best_gain, best_thr = gain, thr
    return best_gain, best_thr


@dataclass
class _Node:
    label: object = None  # leaf payload
    shapelet: np.ndarray | None = None
    threshold: float = 0.0
    left: "_Node | None" = None  # distance <= threshold
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        """True when this node carries a label, not a split."""
        return self.shapelet is None


class FastShapeletsClassifier(BaseEstimator):
    """Shapelet decision tree with SAX random-projection candidate search.

    Parameters
    ----------
    length_fractions:
        Candidate shapelet lengths as fractions of the series length.
    n_projections:
        Random masking rounds per length (the paper uses 10).
    mask_size:
        Word positions hidden per round.
    top_k:
        Words refined with true information gain per length.
    max_depth, min_leaf:
        Tree growth limits.
    """

    @keyword_only(
        "length_fractions",
        "n_projections",
        "mask_size",
        "top_k",
        "max_depth",
        "min_leaf",
        "stride_fraction",
        "seed",
    )
    def __init__(
        self,
        *,
        length_fractions: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4),
        n_projections: int = 10,
        mask_size: int = 3,
        top_k: int = 10,
        max_depth: int = 8,
        min_leaf: int = 2,
        stride_fraction: float = 0.05,
        seed: int = 0,
    ) -> None:
        self.length_fractions = length_fractions
        self.n_projections = n_projections
        self.mask_size = mask_size
        self.top_k = top_k
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.stride_fraction = stride_fraction
        self.seed = seed
        self.root_: _Node | None = None
        self.n_candidates_scored_: int = 0

    # -- fitting -----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FastShapeletsClassifier":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = znorm_rows(np.asarray(X, dtype=float))
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of instances")
        rng = np.random.default_rng(self.seed)
        self.n_candidates_scored_ = 0
        self.root_ = self._build(X, y, depth=0, rng=rng)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng) -> _Node:
        labels, counts = np.unique(y, return_counts=True)
        majority = labels[int(np.argmax(counts))]
        if labels.size == 1 or depth >= self.max_depth or y.size <= self.min_leaf:
            return _Node(label=majority)

        best = None  # (gain, shapelet, threshold, distances)
        for candidate in self._candidates(X, y, rng):
            distances = np.array([best_match(candidate, series).distance for series in X])
            gain, threshold = _best_split(y, distances)
            self.n_candidates_scored_ += 1
            if best is None or gain > best[0]:
                best = (gain, candidate, threshold, distances)
        if best is None or best[0] <= 0.0:
            return _Node(label=majority)

        gain, shapelet, threshold, distances = best
        mask = distances <= threshold
        if mask.all() or (~mask).all():  # pragma: no cover - gain>0 prevents this
            return _Node(label=majority)
        return _Node(
            shapelet=shapelet,
            threshold=threshold,
            left=self._build(X[mask], y[mask], depth + 1, rng),
            right=self._build(X[~mask], y[~mask], depth + 1, rng),
        )

    def _candidates(self, X: np.ndarray, y: np.ndarray, rng) -> list[np.ndarray]:
        """Top-k raw subsequences per length, via masked-word collisions."""
        m = X.shape[1]
        out: list[np.ndarray] = []
        for fraction in self.length_fractions:
            length = max(4, int(round(fraction * m)))
            if length >= m:
                continue
            stride = max(1, int(self.stride_fraction * m))
            word_len = min(SAX_WORD_LENGTH, length)
            # Word -> (first raw subsequence, per-class collision counts).
            first_seen: dict[str, np.ndarray] = {}
            collisions: dict[str, defaultdict] = {}
            for series, label in zip(X, y):
                for start in range(0, m - length + 1, stride):
                    sub = series[start : start + length]
                    word = sax_word(sub, word_len, SAX_ALPHABET)
                    if word not in first_seen:
                        first_seen[word] = sub
                        collisions[word] = defaultdict(int)
                    for _ in range(self.n_projections):
                        masked = self._mask(word, rng)
                        # Collision counting happens per masked variant;
                        # aggregating on the unmasked word keeps the same
                        # similar-words-collide effect with less memory.
                        collisions[word][(masked, label)] += 1
            scored: list[tuple[float, str]] = []
            class_totals = {label: int(np.sum(y == label)) for label in np.unique(y)}
            for word, table in collisions.items():
                per_class = defaultdict(int)
                for (masked, label), count in table.items():
                    per_class[label] += count
                rates = np.array(
                    [per_class[label] / class_totals[label] for label in class_totals]
                )
                if rates.sum() <= 0:
                    continue
                score = float(rates.max() - (rates.sum() - rates.max()) / max(1, rates.size - 1))
                scored.append((score, word))
            scored.sort(reverse=True)
            out.extend(first_seen[word] for _, word in scored[: self.top_k])
        return out

    def _mask(self, word: str, rng) -> str:
        positions = rng.choice(len(word), size=min(self.mask_size, len(word)), replace=False)
        chars = list(word)
        for pos in positions:
            chars[pos] = "_"
        return "".join(chars)

    # -- prediction ----------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        if self.root_ is None:
            raise RuntimeError("classifier used before fit()")
        X = znorm_rows(np.asarray(X, dtype=float))
        out = []
        for series in X:
            node = self.root_
            while not node.is_leaf:
                dist = best_match(node.shapelet, series).distance
                node = node.left if dist <= node.threshold else node.right
            out.append(node.label)
        return np.asarray(out)

    def depth(self) -> int:
        """Tree depth (mostly for tests and reporting)."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)
