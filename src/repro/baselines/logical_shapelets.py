"""Logical Shapelets baseline (Mueen, Keogh & Young, KDD 2011).

§2.2 of the paper: "The Logical Shapelets extends the original work by
improving the efficiency and introducing an augmented, more expressive
shapelet representation based on conjunctions or disjunctions of
shapelets."

This implementation keeps the expressive core: a decision-tree node may
test a *logical combination* of up to two shapelets —

* ``d(S1) ≤ t1``                       (plain shapelet),
* ``d(S1) ≤ t1  AND  d(S2) ≤ t2``      (conjunction),
* ``d(S1) ≤ t1  OR   d(S2) ≤ t2``      (disjunction) —

choosing whichever maximizes information gain. Candidates come from the
same stride-sampled pool as our Shapelet Transform; the second shapelet
of a combination is greedily picked to improve the first's split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..base import BaseEstimator, keyword_only
from ..distance.best_match import batch_best_distances
from ..sax.znorm import znorm, znorm_rows
from .fast_shapelets import _best_split, information_gain

__all__ = ["LogicalShapeletsClassifier", "LogicalNode"]


@dataclass
class LogicalNode:
    """One tree node: a 1- or 2-shapelet logical predicate, or a leaf."""

    label: object = None
    op: str | None = None  # None (single), 'and', 'or'
    shapelet_a: np.ndarray | None = None
    threshold_a: float = 0.0
    shapelet_b: np.ndarray | None = None
    threshold_b: float = 0.0
    left: "LogicalNode | None" = None  # predicate true
    right: "LogicalNode | None" = None

    @property
    def is_leaf(self) -> bool:
        """True when this node carries a label, not a split."""
        return self.shapelet_a is None

    def evaluate(self, series: np.ndarray) -> bool:
        """Evaluate the node's logical predicate on one series."""
        from ..distance.best_match import best_match

        a = best_match(self.shapelet_a, series).distance <= self.threshold_a
        if self.op is None:
            return bool(a)
        b = best_match(self.shapelet_b, series).distance <= self.threshold_b
        return bool(a and b) if self.op == "and" else bool(a or b)


class LogicalShapeletsClassifier(BaseEstimator):
    """Decision tree over logical combinations of shapelets.

    Parameters mirror :class:`ShapeletTransformClassifier`; ``top_k``
    bounds how many base shapelets are considered for combination at
    each node (combination search is quadratic in it).
    """

    @keyword_only(
        "length_fractions", "stride_fraction", "top_k", "max_depth", "min_leaf", "seed"
    )
    def __init__(
        self,
        *,
        length_fractions: tuple[float, ...] = (0.15, 0.3),
        stride_fraction: float = 0.15,
        top_k: int = 5,
        max_depth: int = 6,
        min_leaf: int = 2,
        seed: int = 0,
    ) -> None:
        self.length_fractions = length_fractions
        self.stride_fraction = stride_fraction
        self.top_k = top_k
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.seed = seed
        self.root_: LogicalNode | None = None
        self.n_logical_nodes_: int = 0

    # -- fitting ------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogicalShapeletsClassifier":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = znorm_rows(np.asarray(X, dtype=float))
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of instances")
        self.n_logical_nodes_ = 0
        self.root_ = self._build(X, y, depth=0)
        return self

    def _candidates(self, X: np.ndarray) -> list[np.ndarray]:
        n, m = X.shape
        stride = max(1, int(self.stride_fraction * m))
        out = []
        for fraction in self.length_fractions:
            length = max(4, int(round(fraction * m)))
            if length >= m:
                continue
            for i in range(n):
                for start in range(0, m - length + 1, stride):
                    out.append(znorm(X[i, start : start + length]))
        return out

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> LogicalNode:
        labels, counts = np.unique(y, return_counts=True)
        majority = labels[int(np.argmax(counts))]
        if labels.size == 1 or depth >= self.max_depth or y.size <= self.min_leaf:
            return LogicalNode(label=majority)

        candidates = self._candidates(X)
        if not candidates:
            return LogicalNode(label=majority)
        scored = []
        for candidate in candidates:
            distances = batch_best_distances(candidate, X)
            gain, threshold = _best_split(y, distances)
            scored.append((gain, candidate, threshold, distances))
        scored.sort(key=lambda item: item[0], reverse=True)
        top = scored[: self.top_k]
        best_gain, best_s, best_t, best_d = top[0]
        node = LogicalNode(
            shapelet_a=best_s, threshold_a=best_t, op=None
        )
        best_mask = best_d <= best_t

        # Try augmenting the best single split with a second shapelet.
        for gain_b, s_b, t_b, d_b in top[1:]:
            for op in ("and", "or"):
                mask = (
                    best_mask & (d_b <= t_b) if op == "and" else best_mask | (d_b <= t_b)
                )
                if mask.all() or (~mask).all():
                    continue
                gain = information_gain(y, (~mask).astype(float), 0.5)
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    node = LogicalNode(
                        shapelet_a=best_s,
                        threshold_a=best_t,
                        shapelet_b=s_b,
                        threshold_b=t_b,
                        op=op,
                    )
                    best_mask = mask

        if best_gain <= 0.0 or best_mask.all() or (~best_mask).all():
            return LogicalNode(label=majority)
        if node.op is not None:
            self.n_logical_nodes_ += 1
        node.left = self._build(X[best_mask], y[best_mask], depth + 1)
        node.right = self._build(X[~best_mask], y[~best_mask], depth + 1)
        return node

    # -- prediction ------------------------------------------------------------

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        if self.root_ is None:
            raise RuntimeError("classifier used before fit()")
        X = znorm_rows(np.asarray(X, dtype=float))
        out = []
        for series in X:
            node = self.root_
            while not node.is_leaf:
                node = node.left if node.evaluate(series) else node.right
            out.append(node.label)
        return np.asarray(out)
