"""Shapelet Transform baseline (Hills et al. / Lines et al., 2012-2014).

§2.2 of the paper: "The Shapelet Transform technique finds the best
K-shapelets and transforms the original time series into a vector of K
features, each of which represents the distance between a time series
and a shapelet. This technique can thus be used with virtually any
classification algorithm."

This is the closest structural relative of RPM's own transform — the
difference the paper emphasizes is *how the patterns are found*
(exhaustive IG-scored candidates here vs. grammar-induced class motifs
in RPM). Implementation:

* candidate subsequences sampled on a stride over several lengths;
* each scored by the information gain of its best distance split;
* top-K kept with self-similarity pruning (no two from overlapping
  positions of the same series);
* the distance transform feeds a pluggable classifier (default: our
  RBF SVM), exactly like RPM's stage 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..base import BaseEstimator, keyword_only
from ..distance.best_match import batch_best_distances
from ..ml.svm import SVC
from ..sax.znorm import znorm, znorm_rows
from .fast_shapelets import _best_split

__all__ = ["ShapeletTransformClassifier", "Shapelet"]


@dataclass(frozen=True)
class Shapelet:
    """A scored shapelet: values plus provenance for pruning/reporting."""

    values: np.ndarray
    gain: float
    source_series: int
    position: int

    @property
    def length(self) -> int:
        """Number of points."""
        return int(self.values.size)


class ShapeletTransformClassifier(BaseEstimator):
    """K-shapelet transform + classifier.

    Parameters
    ----------
    n_shapelets:
        Number of features (K) kept for the transform.
    length_fractions:
        Candidate lengths as fractions of the series length.
    stride_fraction:
        Sampling stride for candidate start positions.
    classifier_factory:
        Downstream classifier (default RBF SVM).
    """

    @keyword_only(
        "n_shapelets", "length_fractions", "stride_fraction", "classifier_factory", "seed"
    )
    def __init__(
        self,
        *,
        n_shapelets: int = 10,
        length_fractions: tuple[float, ...] = (0.1, 0.2, 0.3),
        stride_fraction: float = 0.1,
        classifier_factory=None,
        seed: int = 0,
    ) -> None:
        self.n_shapelets = n_shapelets
        self.length_fractions = length_fractions
        self.stride_fraction = stride_fraction
        self.classifier_factory = classifier_factory or (lambda: SVC(kernel="rbf", C=1.0))
        self.seed = seed
        self.shapelets_: list[Shapelet] = []
        self.classifier_ = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ShapeletTransformClassifier":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = znorm_rows(np.asarray(X, dtype=float))
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on the number of instances")
        n, m = X.shape
        stride = max(1, int(self.stride_fraction * m))

        scored: list[Shapelet] = []
        for fraction in self.length_fractions:
            length = max(4, int(round(fraction * m)))
            if length >= m:
                continue
            for i in range(n):
                for start in range(0, m - length + 1, stride):
                    candidate = znorm(X[i, start : start + length])
                    distances = batch_best_distances(candidate, X)
                    gain, _ = _best_split(y, distances)
                    scored.append(
                        Shapelet(
                            values=candidate,
                            gain=gain,
                            source_series=i,
                            position=start,
                        )
                    )
        scored.sort(key=lambda s: s.gain, reverse=True)

        # Self-similarity pruning: skip candidates overlapping an
        # already-kept shapelet from the same series.
        kept: list[Shapelet] = []
        for shapelet in scored:
            overlaps = any(
                k.source_series == shapelet.source_series
                and abs(k.position - shapelet.position) < min(k.length, shapelet.length)
                for k in kept
            )
            if overlaps:
                continue
            kept.append(shapelet)
            if len(kept) == self.n_shapelets:
                break
        if not kept:  # degenerate (e.g. single-class input)
            kept = scored[:1] if scored else [
                Shapelet(values=znorm(X[0, : max(4, m // 4)]), gain=0.0,
                         source_series=0, position=0)
            ]
        self.shapelets_ = kept

        features = self.transform(X, already_znormed=True)
        self.classifier_ = self.classifier_factory()
        if np.unique(y).size >= 2:
            self.classifier_.fit(features, y)
        else:
            self.classifier_ = _ConstantClassifier(y[0])
        return self

    def transform(self, X: np.ndarray, *, already_znormed: bool = False) -> np.ndarray:
        """K shapelet distances per series (the 'shapelet transform')."""
        if not self.shapelets_:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=float)
        if not already_znormed:
            X = znorm_rows(X)
        return np.column_stack(
            [batch_best_distances(s.values, X) for s in self.shapelets_]
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        if self.classifier_ is None:
            raise RuntimeError("classifier used before fit()")
        return self.classifier_.predict(self.transform(X))


class _ConstantClassifier:
    def __init__(self, label) -> None:
        self._label = label

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        return np.full(np.asarray(X).shape[0], self._label)
