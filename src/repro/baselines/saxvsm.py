"""SAX-VSM baseline (Senin & Malinchik, ICDM 2013).

The paper's closest rival in spirit: every training series is broken
into SAX words (sliding window + numerosity reduction), the words of
each class form one *bag*, bags are weighted with tf·idf, and a test
series is labelled by cosine similarity between its own term-frequency
vector and the class weight vectors.

Differences from RPM that the paper calls out (§2.2): SAX-VSM patterns
all share the sliding-window length, and no pruning is applied — the
class vectors keep every word.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..base import BaseEstimator, keyword_only
from ..opt.direct import direct_minimize
from ..opt.grid import CachedIntegerObjective
from ..sax.discretize import SaxParams, discretize
from ..ml.crossval import stratified_kfold
from ..ml.metrics import accuracy

__all__ = ["SaxVsmClassifier"]


def _series_bag(series: np.ndarray, params: SaxParams) -> Counter:
    record = discretize(np.asarray(series, dtype=float), params)
    return Counter(record.words)


class SaxVsmClassifier(BaseEstimator):
    """tf·idf bag-of-SAX-words classifier.

    Parameters
    ----------
    params:
        SAX parameters to use. When ``None``, ``fit`` selects them with
        a small DIRECT search over cross-validated accuracy — the same
        treatment the original SAX-VSM paper applies.
    direct_budget:
        Maximum objective evaluations for the parameter search.
    """

    @keyword_only("params")
    def __init__(
        self,
        *,
        params: SaxParams | None = None,
        direct_budget: int = 40,
        cv_folds: int = 3,
        seed: int = 0,
    ) -> None:
        self.params = params
        self.direct_budget = direct_budget
        self.cv_folds = cv_folds
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self.weights_: dict = {}
        self.vocabulary_: list[str] = []

    # -- model building ------------------------------------------------------

    def _build_weights(self, X: np.ndarray, y: np.ndarray, params: SaxParams) -> tuple:
        classes = np.unique(y)
        bags = {label: Counter() for label in classes}
        for series, label in zip(X, y):
            bags[label].update(_series_bag(series, params))
        vocabulary = sorted(set().union(*[set(b) for b in bags.values()]))
        index = {word: i for i, word in enumerate(vocabulary)}
        n_classes = classes.size
        tf = np.zeros((n_classes, len(vocabulary)))
        for c, label in enumerate(classes):
            for word, count in bags[label].items():
                tf[c, index[word]] = 1.0 + np.log(count)
        df = (tf > 0).sum(axis=0)
        idf = np.log(n_classes / np.maximum(df, 1))
        weights = tf * idf[None, :]
        return classes, vocabulary, index, weights

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SaxVsmClassifier":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        params = self.params
        if params is None:
            params = self._select_params(X, y)
        self.params = params
        self.classes_, self.vocabulary_, self._index, self.weights_ = self._build_weights(
            X, y, params
        )
        return self

    # -- parameter selection ---------------------------------------------------

    def _select_params(self, X: np.ndarray, y: np.ndarray) -> SaxParams:
        m = X.shape[1]
        lo_w = max(8, int(0.08 * m))
        hi_w = max(lo_w + 2, int(0.6 * m))

        def objective(key: tuple[int, ...]) -> float:
            window, paa, alpha = key
            window = int(np.clip(window, 4, m))
            paa = int(np.clip(paa, 2, min(window, 16)))
            alpha = int(np.clip(alpha, 3, 12))
            params = SaxParams(window, paa, alpha)
            errors = []
            for train_idx, test_idx in stratified_kfold(y, self.cv_folds, seed=self.seed):
                try:
                    classes, vocab, index, weights = self._build_weights(
                        X[train_idx], y[train_idx], params
                    )
                except ValueError:
                    return 1.0
                preds = self._predict_with(X[test_idx], params, classes, index, weights)
                errors.append(1.0 - accuracy(y[test_idx], preds))
            return float(np.mean(errors))

        cached = CachedIntegerObjective(objective)
        result = direct_minimize(
            cached,
            bounds=[(lo_w, hi_w), (2, 16), (3, 12)],
            max_evaluations=self.direct_budget,
            max_iterations=30,
        )
        window, paa, alpha = (int(round(v)) for v in result.x)
        window = int(np.clip(window, 4, m))
        paa = int(np.clip(paa, 2, min(window, 16)))
        alpha = int(np.clip(alpha, 3, 12))
        return SaxParams(window, paa, alpha)

    # -- prediction --------------------------------------------------------------

    def _predict_with(self, X, params, classes, index, weights) -> np.ndarray:
        norms = np.linalg.norm(weights, axis=1)
        norms[norms < 1e-12] = 1.0
        out = []
        for series in np.asarray(X, dtype=float):
            bag = _series_bag(series, params)
            vec = np.zeros(weights.shape[1])
            for word, count in bag.items():
                pos = index.get(word)
                if pos is not None:
                    vec[pos] = count
            vnorm = np.linalg.norm(vec)
            if vnorm < 1e-12:
                out.append(classes[0])
                continue
            cosine = (weights @ vec) / (norms * vnorm)
            out.append(classes[int(np.argmax(cosine))])
        return np.asarray(out)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        if self.classes_ is None:
            raise RuntimeError("classifier used before fit()")
        return self._predict_with(X, self.params, self.classes_, self._index, self.weights_)
