"""Learning Shapelets baseline (Grabocka et al., KDD 2014).

The most accurate rival in the paper's Table 1 (and the slowest in
Table 2). Instead of searching candidate subsequences, LS treats the
shapelets themselves as model parameters: the distance of series *i*
to shapelet *k* is pooled over all alignments with a differentiable
soft-minimum, a linear one-vs-all logistic layer sits on top, and
shapelets + weights are learned jointly by gradient descent.

Faithful ingredients kept here: multiple shapelet scales, k-means
segment initialization, soft-min pooling with sharpness ``alpha``,
one-vs-all logistic loss with L2 regularization, full-batch Adagrad,
and — in :class:`TunedLearningShapelets` — the published protocol's
cross-validated hyperparameter grid (the grid search is what makes LS
by far the slowest method in the paper's Table 2).
"""

from __future__ import annotations

import itertools

import numpy as np

from ..base import BaseEstimator, keyword_only
from ..ml.crossval import stratified_kfold
from ..sax.znorm import znorm_rows

__all__ = ["LearningShapeletsClassifier", "TunedLearningShapelets"]


def _segment_windows(X: np.ndarray, length: int) -> np.ndarray:
    """(n, J, L) tensor of all sliding windows of every series."""
    return np.lib.stride_tricks.sliding_window_view(X, length, axis=1)


def _kmeans_segments(
    segments: np.ndarray, k: int, rng: np.random.Generator, iterations: int = 10
) -> np.ndarray:
    """Lightweight Lloyd's k-means used to initialize shapelets."""
    n = segments.shape[0]
    k = min(k, n)
    centers = segments[rng.choice(n, size=k, replace=False)].copy()
    for _ in range(iterations):
        d2 = (
            np.sum(segments**2, axis=1)[:, None]
            + np.sum(centers**2, axis=1)[None, :]
            - 2.0 * segments @ centers.T
        )
        assign = np.argmin(d2, axis=1)
        for c in range(k):
            members = segments[assign == c]
            if members.size:
                centers[c] = members.mean(axis=0)
    return centers


class LearningShapeletsClassifier(BaseEstimator):
    """Jointly learned shapelets + linear classifier.

    Parameters
    ----------
    n_shapelets:
        Shapelets per scale (K).
    length_fraction:
        Base shapelet length L as a fraction of the series length.
    n_scales:
        Scales r = 1..R use length r·L.
    alpha:
        Soft-min sharpness (negative; -30 approximates the hard min
        well on z-normalized data).
    l2:
        Weight regularization λ.
    epochs / learning_rate:
        Full-batch Adagrad schedule.
    """

    @keyword_only(
        "n_shapelets",
        "length_fraction",
        "n_scales",
        "alpha",
        "l2",
        "epochs",
        "learning_rate",
        "seed",
    )
    def __init__(
        self,
        *,
        n_shapelets: int = 8,
        length_fraction: float = 0.15,
        n_scales: int = 2,
        alpha: float = -30.0,
        l2: float = 0.01,
        epochs: int = 400,
        learning_rate: float = 0.5,
        seed: int = 0,
    ) -> None:
        if alpha >= 0:
            raise ValueError("alpha must be negative (soft-min)")
        self.n_shapelets = n_shapelets
        self.length_fraction = length_fraction
        self.n_scales = n_scales
        self.alpha = alpha
        self.l2 = l2
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self.shapelets_: list[np.ndarray] = []  # one (K, L_r) block per scale
        self.W_: np.ndarray | None = None
        self.b_: np.ndarray | None = None
        self.classes_: np.ndarray | None = None
        self.loss_history_: list[float] = []

    # -- internals -------------------------------------------------------------

    def _scale_lengths(self, m: int) -> list[int]:
        base = max(4, int(round(self.length_fraction * m)))
        lengths = []
        for r in range(1, self.n_scales + 1):
            length = r * base
            if length < m:
                lengths.append(length)
        return lengths or [max(4, m // 2)]

    def _soft_min(self, D: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Soft-minimum over the alignment axis.

        ``D`` is (n, K, J); returns ``(M, P)`` with ``M`` the (n, K)
        pooled distances and ``P`` the (n, K, J) softmax weights
        ``e^{αD} / Σ e^{αD}`` needed for the backward pass.
        """
        z = self.alpha * D
        z -= z.max(axis=2, keepdims=True)
        e = np.exp(z)
        P = e / e.sum(axis=2, keepdims=True)
        M = np.sum(P * D, axis=2)
        return M, P

    def _distances(self, windows: np.ndarray, S: np.ndarray) -> np.ndarray:
        """Mean squared distance of every shapelet to every window.

        ``windows`` is (n, J, L), ``S`` is (K, L); returns (n, K, J).
        """
        n, J, L = windows.shape
        flat = windows.reshape(n * J, L)
        cross = flat @ S.T  # (nJ, K)
        w2 = np.sum(flat * flat, axis=1)[:, None]
        s2 = np.sum(S * S, axis=1)[None, :]
        D = (w2 - 2.0 * cross + s2) / L
        return np.maximum(D, 0.0).reshape(n, J, S.shape[0]).transpose(0, 2, 1)

    # -- training ---------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LearningShapeletsClassifier":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = znorm_rows(np.asarray(X, dtype=float))
        y = np.asarray(y)
        n, m = X.shape
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        C = self.classes_.size
        Y = (y[:, None] == self.classes_[None, :]).astype(float)

        lengths = self._scale_lengths(m)
        windows = [_segment_windows(X, L) for L in lengths]
        self.shapelets_ = []
        for L, win in zip(lengths, windows):
            segments = win.reshape(-1, L)
            sample = segments[rng.choice(segments.shape[0], size=min(2000, segments.shape[0]), replace=False)]
            self.shapelets_.append(_kmeans_segments(sample, self.n_shapelets, rng))

        K_total = sum(s.shape[0] for s in self.shapelets_)
        W = rng.normal(0.0, 0.01, size=(K_total, C))
        b = np.zeros(C)
        gW = np.zeros_like(W)
        gb = np.zeros_like(b)
        gS = [np.zeros_like(s) for s in self.shapelets_]
        eps = 1e-8
        lr = self.learning_rate
        self.loss_history_ = []

        for _ in range(self.epochs):
            Ms, Ps, Ds = [], [], []
            for S, win in zip(self.shapelets_, windows):
                D = self._distances(win, S)
                M, P = self._soft_min(D)
                Ms.append(M)
                Ps.append(P)
                Ds.append(D)
            M_all = np.concatenate(Ms, axis=1)  # (n, K_total)

            logits = M_all @ W + b
            probs = 1.0 / (1.0 + np.exp(-logits))
            loss = float(
                -np.mean(Y * np.log(probs + eps) + (1 - Y) * np.log(1 - probs + eps))
                + self.l2 * np.sum(W * W)
            )
            self.loss_history_.append(loss)

            G = (probs - Y) / n  # (n, C)
            dW = M_all.T @ G + 2.0 * self.l2 * W
            db = G.sum(axis=0)
            dM_all = G @ W.T  # (n, K_total)

            offset = 0
            for idx, (S, win, M, P, D) in enumerate(
                zip(self.shapelets_, windows, Ms, Ps, Ds)
            ):
                K, L = S.shape
                dM = dM_all[:, offset : offset + K]  # (n, K)
                offset += K
                # dM/dD via the soft-min quotient rule:
                # ∂M/∂D_j = P_j · (1 + α·(D_j − M)).
                T = dM[:, :, None] * P * (1.0 + self.alpha * (D - M[:, :, None]))
                # dD/dS: 2/L · (S_l − X_{j+l}); assemble with one matmul.
                t_sum = T.sum(axis=(0, 2))  # (K,)
                nwin, J, _ = win.shape
                flat = win.reshape(nwin * J, L)
                TX = T.transpose(1, 0, 2).reshape(K, nwin * J) @ flat  # (K, L)
                dS = (2.0 / L) * (t_sum[:, None] * S - TX)
                gS[idx] += dS * dS
                self.shapelets_[idx] = S - lr * dS / (np.sqrt(gS[idx]) + eps)

            gW += dW * dW
            gb += db * db
            W -= lr * dW / (np.sqrt(gW) + eps)
            b -= lr * db / (np.sqrt(gb) + eps)

        self.W_ = W
        self.b_ = b
        self._lengths = lengths
        return self

    # -- prediction ---------------------------------------------------------------

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Soft-min shapelet distances (n, K_total) for new series."""
        if self.W_ is None:
            raise RuntimeError("classifier used before fit()")
        X = znorm_rows(np.asarray(X, dtype=float))
        Ms = []
        for S, L in zip(self.shapelets_, self._lengths):
            win = _segment_windows(X, L)
            D = self._distances(win, S)
            M, _ = self._soft_min(D)
            Ms.append(M)
        return np.concatenate(Ms, axis=1)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        M = self.transform(X)
        logits = M @ self.W_ + self.b_
        assert self.classes_ is not None
        return self.classes_[np.argmax(logits, axis=1)]


#: The hyperparameter grid cross-validated by the published protocol
#: (Grabocka et al. search K, the length scale and λ the same way).
DEFAULT_LS_GRID = {
    "n_shapelets": (4, 8),
    "length_fraction": (0.1, 0.2),
    "l2": (0.01, 0.1),
}


class TunedLearningShapelets(BaseEstimator):
    """Learning Shapelets with the published cross-validated grid search.

    Every grid point trains a full model per CV fold, so the cost is
    ``|grid| × folds + 1`` gradient-descent runs — the reason LS is the
    slowest entry of the paper's Table 2 by orders of magnitude.
    """

    @keyword_only("grid")
    def __init__(
        self,
        *,
        grid: dict | None = None,
        cv_folds: int = 3,
        epochs: int = 600,
        seed: int = 0,
    ) -> None:
        self.grid = grid or DEFAULT_LS_GRID
        self.cv_folds = cv_folds
        self.epochs = epochs
        self.seed = seed
        self.best_params_: dict | None = None
        self.model_: LearningShapeletsClassifier | None = None
        self.cv_errors_: dict[tuple, float] = {}

    def _configurations(self):
        keys = sorted(self.grid)
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TunedLearningShapelets":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        best_error = np.inf
        best_config: dict = {}
        for config in self._configurations():
            errors = []
            folds = min(self.cv_folds, int(np.unique(y, return_counts=True)[1].min()), 5)
            folds = max(folds, 2)
            try:
                splits = list(stratified_kfold(y, folds, seed=self.seed))
            except ValueError:
                splits = []
            for train_idx, test_idx in splits:
                if np.unique(y[train_idx]).size < 2:
                    continue
                model = LearningShapeletsClassifier(
                    epochs=self.epochs, seed=self.seed, **config
                )
                model.fit(X[train_idx], y[train_idx])
                preds = model.predict(X[test_idx])
                errors.append(float(np.mean(preds != y[test_idx])))
            error = float(np.mean(errors)) if errors else 1.0
            self.cv_errors_[tuple(sorted(config.items()))] = error
            if error < best_error:
                best_error = error
                best_config = config
        self.best_params_ = best_config
        self.model_ = LearningShapeletsClassifier(
            epochs=self.epochs, seed=self.seed, **best_config
        )
        self.model_.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict a class label for every row of ``X``."""
        if self.model_ is None:
            raise RuntimeError("classifier used before fit()")
        return self.model_.predict(X)
