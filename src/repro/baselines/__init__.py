"""Rival classifiers from the paper's evaluation (Table 1).

* :class:`NearestNeighborED` — 1NN, Euclidean distance.
* :class:`NearestNeighborDTW` — 1NN, DTW with the best warping window.
* :class:`SaxVsmClassifier` — SAX-VSM tf·idf bags of SAX words.
* :class:`FastShapeletsClassifier` — SAX random-projection shapelet tree.
* :class:`LearningShapeletsClassifier` — gradient-learned shapelets.

Two further related-work methods ship as extensions:
:class:`ShapeletTransformClassifier` (Hills et al.) and
:class:`BagOfPatternsClassifier` (Lin et al. 2012).
"""

from .bag_of_patterns import BagOfPatternsClassifier
from .fast_shapelets import FastShapeletsClassifier, information_gain
from .learning_shapelets import LearningShapeletsClassifier, TunedLearningShapelets
from .logical_shapelets import LogicalNode, LogicalShapeletsClassifier
from .nn import DEFAULT_WINDOW_FRACTIONS, NearestNeighborDTW, NearestNeighborED
from .saxvsm import SaxVsmClassifier
from .shapelet_transform import Shapelet, ShapeletTransformClassifier

__all__ = [
    "BagOfPatternsClassifier",
    "DEFAULT_WINDOW_FRACTIONS",
    "Shapelet",
    "ShapeletTransformClassifier",
    "FastShapeletsClassifier",
    "LearningShapeletsClassifier",
    "LogicalNode",
    "LogicalShapeletsClassifier",
    "NearestNeighborDTW",
    "NearestNeighborED",
    "SaxVsmClassifier",
    "TunedLearningShapelets",
    "information_gain",
]
