"""Nearest-neighbour baselines: 1NN-ED and 1NN-DTW with best window.

These are the two global-distance rivals of the paper's evaluation
(columns *NN-ED* and *NN-DTWB* in Table 1). NN-DTWB selects its
Sakoe-Chiba warping window by leave-one-out cross-validation on the
training set — the classic Ratanamahatana & Keogh recipe — and speeds
up both the selection and prediction with the LB_Keogh lower bound and
early-abandoning DTW.

Series are z-normalized before distance computation, matching the UCR
evaluation protocol.
"""

from __future__ import annotations

import numpy as np

from ..base import BaseEstimator, keyword_only
from ..distance.dtw import dtw_distance, envelope, lb_keogh
from ..sax.znorm import znorm_rows

__all__ = ["NearestNeighborED", "NearestNeighborDTW", "DEFAULT_WINDOW_FRACTIONS"]

#: Candidate warping windows, as fractions of the series length. UCR's
#: published best windows are almost always below 20 %.
DEFAULT_WINDOW_FRACTIONS: tuple[float, ...] = (
    0.0,
    0.01,
    0.02,
    0.03,
    0.04,
    0.05,
    0.06,
    0.08,
    0.10,
    0.15,
    0.20,
)


class NearestNeighborED(BaseEstimator):
    """1-NN with Euclidean distance on z-normalized series."""

    def __init__(self) -> None:
        self.X_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NearestNeighborED":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, m) with matching y")
        self.X_ = znorm_rows(X)
        self.y_ = y
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict by the nearest training neighbour."""
        if self.X_ is None or self.y_ is None:
            raise RuntimeError("classifier used before fit()")
        Q = znorm_rows(np.asarray(X, dtype=float))
        d2 = _squared_cross_distances(Q, self.X_)
        return self.y_[np.argmin(d2, axis=1)]


def _squared_cross_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    a2 = np.sum(A * A, axis=1)[:, None]
    b2 = np.sum(B * B, axis=1)[None, :]
    d2 = a2 + b2 - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


class NearestNeighborDTW(BaseEstimator):
    """1-NN DTW with the warping window learned on the training set.

    Parameters
    ----------
    window_fractions:
        Candidate Sakoe-Chiba half-widths as fractions of the series
        length. ``None`` skips selection and uses ``fixed_window``.
    fixed_window:
        Window (in samples) to use without selection.
    """

    @keyword_only("window_fractions", "fixed_window")
    def __init__(
        self,
        *,
        window_fractions: tuple[float, ...] | None = DEFAULT_WINDOW_FRACTIONS,
        fixed_window: int | None = None,
    ) -> None:
        self.window_fractions = window_fractions
        self.fixed_window = fixed_window
        self.X_: np.ndarray | None = None
        self.y_: np.ndarray | None = None
        self.best_window_: int | None = None
        self.loocv_accuracy_: dict[int, float] = {}

    # -- training ---------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NearestNeighborDTW":
        """Fit the model on training series ``X`` with labels ``y``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError("X must be (n, m) with matching y")
        self.X_ = znorm_rows(X)
        self.y_ = y
        if self.window_fractions is None:
            if self.fixed_window is None:
                raise ValueError("provide window_fractions or fixed_window")
            self.best_window_ = int(self.fixed_window)
            return self
        m = X.shape[1]
        candidates = sorted({int(round(f * m)) for f in self.window_fractions})
        best_window = candidates[0]
        best_acc = -1.0
        for window in candidates:
            acc = self._loocv_accuracy(window)
            self.loocv_accuracy_[window] = acc
            if acc > best_acc + 1e-12:
                best_acc = acc
                best_window = window
        self.best_window_ = best_window
        return self

    def _loocv_accuracy(self, window: int) -> float:
        assert self.X_ is not None and self.y_ is not None
        n = self.X_.shape[0]
        correct = 0
        d2 = _squared_cross_distances(self.X_, self.X_)
        np.fill_diagonal(d2, np.inf)
        envelopes = [envelope(self.X_[i], window) for i in range(n)] if window > 0 else None
        for i in range(n):
            label = self._nearest_label(
                self.X_[i],
                window,
                exclude=i,
                ed_order=np.argsort(d2[i]),
                query_envelope=envelopes[i] if envelopes else None,
            )
            if label == self.y_[i]:
                correct += 1
        return correct / n

    # -- prediction --------------------------------------------------------

    def _nearest_label(
        self,
        query: np.ndarray,
        window: int,
        *,
        exclude: int | None = None,
        ed_order: np.ndarray | None = None,
        query_envelope: tuple[np.ndarray, np.ndarray] | None = None,
    ):
        assert self.X_ is not None and self.y_ is not None
        n = self.X_.shape[0]
        order = ed_order if ed_order is not None else np.arange(n)
        if window > 0 and query_envelope is None:
            query_envelope = envelope(query, window)
        best = np.inf
        best_idx = -1
        for j in order:
            if j == exclude:
                continue
            if window > 0:
                assert query_envelope is not None
                lb = lb_keogh(self.X_[j], *query_envelope)
                if lb >= best:
                    continue
            dist = dtw_distance(query, self.X_[j], window, cutoff=best if np.isfinite(best) else None)
            if dist < best:
                best = dist
                best_idx = int(j)
        return self.y_[best_idx]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict by the nearest training neighbour."""
        if self.X_ is None or self.y_ is None or self.best_window_ is None:
            raise RuntimeError("classifier used before fit()")
        Q = znorm_rows(np.asarray(X, dtype=float))
        window = self.best_window_
        d2 = _squared_cross_distances(Q, self.X_)
        out = np.empty(Q.shape[0], dtype=self.y_.dtype)
        for i in range(Q.shape[0]):
            out[i] = self._nearest_label(Q[i], window, ed_order=np.argsort(d2[i]))
        return out
