"""Process-wide metrics: counters, gauges and compact histograms.

The pipeline's hot loops (cache lookups, executor chunks, candidate
filtering) publish into a :class:`MetricsRegistry` — a thread-safe bag
of named instruments that costs a dict lookup plus an integer add per
update, cheap enough to leave permanently on. One process-wide registry
(:func:`registry`) is shared by the runtime cache, the executor and the
pipeline stages; tests and embedded uses can pass their own instance.

Metric names are dotted strings (``cache.hits``,
``candidates.dropped_support``, ``executor.chunk_seconds``); the full
catalogue lives in ``docs/observability.md``.
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "registry"]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def as_record(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def as_record(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Streaming summary of observed values: count/total/min/max.

    Deliberately bucket-free — per-stage wall times only need the
    count, sum and extrema to compute means and spot outliers, and a
    four-field update keeps the observe path allocation-free.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_record(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe collection of named counters, gauges and histograms.

    All updates take the registry lock, so concurrent increments from
    thread-backend workers are never lost (asserted by the thread-
    safety test). Instruments are created on first use; reading with
    :meth:`counter_value` / :meth:`snapshot` never creates anything.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writers ---------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.value += amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            gauge.value = value

    def add_gauge(self, name: str, delta: float) -> None:
        """Adjust gauge ``name`` by ``delta`` atomically.

        The read-modify-write happens under the registry lock, so
        paired increments/decrements from different threads (e.g. the
        serve queue-depth gauge: +1 on enqueue, -1 on dequeue) can
        never lose an update.
        """
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            gauge.value += delta

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(name)
            hist.count += 1
            hist.total += value
            if value < hist.min:
                hist.min = value
            if value > hist.max:
                hist.max = value

    # -- readers ---------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter else 0

    def gauge_value(self, name: str) -> float:
        with self._lock:
            gauge = self._gauges.get(name)
            return gauge.value if gauge else 0.0

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-serializable)."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: h.as_record() for n, h in self._histograms.items()
                },
            }

    def records(self) -> list[dict]:
        """One flat record per instrument (the JSON-lines payload)."""
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        return [inst.as_record() for inst in instruments]

    def reset(self) -> None:
        """Drop every instrument (counters restart at zero)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_global_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide shared registry.

    Process-backend workers each see their own copy (metrics published
    in a worker process stay there); per-chunk executor timings survive
    because the executor records them on the submitting side.
    """
    return _global_registry
