"""Process-wide metrics: counters, gauges and compact histograms.

The pipeline's hot loops (cache lookups, executor chunks, candidate
filtering) publish into a :class:`MetricsRegistry` — a thread-safe bag
of named instruments that costs a dict lookup plus an integer add per
update, cheap enough to leave permanently on. One process-wide registry
(:func:`registry`) is shared by the runtime cache, the executor and the
pipeline stages; tests and embedded uses can pass their own instance.

Metric names are dotted strings (``cache.hits``,
``candidates.dropped_support``, ``executor.chunk_seconds``); the full
catalogue lives in ``docs/observability.md``.
"""

from __future__ import annotations

import bisect
import contextlib
import threading

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "scoped_registry",
]

#: Shared log-spaced histogram bucket upper bounds (1-2-5 per decade,
#: 1µs … 5000). Sized for the quantities the pipeline observes —
#: seconds-scale stage timings and small counts like batch sizes —
#: while keeping every histogram a fixed 31-int array.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 4) for m in (1.0, 2.0, 5.0)
)


def estimate_quantile(
    buckets, count: float, q: float, lo_clamp: float, hi_clamp: float
) -> float:
    """Quantile ``q`` estimated from log-bucket counts.

    Linear interpolation inside the bucket where the cumulative count
    crosses ``q * count``, with the bucket edges clamped to the observed
    ``[lo_clamp, hi_clamp]`` range — so a histogram holding one distinct
    value reports that value exactly for every quantile.
    """
    if count <= 0:
        return 0.0
    target = q * count
    cum = 0.0
    for i, n in enumerate(buckets):
        if n == 0:
            continue
        prev = cum
        cum += n
        if cum >= target:
            lo = BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
            hi = BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else hi_clamp
            lo = max(lo, lo_clamp)
            hi = min(hi, hi_clamp)
            if hi < lo:
                hi = lo
            frac = (target - prev) / n
            return lo + frac * (hi - lo)
    return hi_clamp


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def as_record(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def as_record(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """Streaming summary of observed values with log-bucket quantiles.

    Tracks count/total/min/max plus a fixed array of :data:`BUCKET_BOUNDS`
    counts, so p50/p95/p99 (any quantile, via :meth:`quantile`) can be
    read at any time without storing observations. The observe path
    stays allocation-free: four scalar updates plus one ``bisect`` into
    a shared bounds tuple and an integer add.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    #: The quantiles surfaced in records, snapshots and exporters.
    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of all observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return estimate_quantile(self.buckets, self.count, q, self.min, self.max)

    def as_record(self) -> dict:
        empty = self.count == 0
        record = {
            "type": "histogram",
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min if not empty else 0.0,
            "max": self.max if not empty else 0.0,
            "mean": self.mean,
        }
        for q in self.QUANTILES:
            record[f"p{int(q * 100)}"] = self.quantile(q)
        return record


class MetricsRegistry:
    """Thread-safe collection of named counters, gauges and histograms.

    All updates take the registry lock, so concurrent increments from
    thread-backend workers are never lost (asserted by the thread-
    safety test). Instruments are created on first use; reading with
    :meth:`counter_value` / :meth:`snapshot` never creates anything.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writers ---------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.value += amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            gauge.value = value

    def add_gauge(self, name: str, delta: float) -> None:
        """Adjust gauge ``name`` by ``delta`` atomically.

        The read-modify-write happens under the registry lock, so
        paired increments/decrements from different threads (e.g. the
        serve queue-depth gauge: +1 on enqueue, -1 on dequeue) can
        never lose an update.
        """
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            gauge.value += delta

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(name)
            hist.count += 1
            hist.total += value
            if value < hist.min:
                hist.min = value
            if value > hist.max:
                hist.max = value
            hist.buckets[bisect.bisect_left(BUCKET_BOUNDS, value)] += 1

    # -- readers ---------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter else 0

    def gauge_value(self, name: str) -> float:
        with self._lock:
            gauge = self._gauges.get(name)
            return gauge.value if gauge else 0.0

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-serializable).

        Histogram entries carry their raw bucket counts alongside the
        derived quantiles, so two snapshots can be diffed with
        :meth:`delta` — benchmarks and tests measure *their* interval
        instead of depending on whatever process-global state
        accumulated before them.
        """
        with self._lock:
            histograms = {}
            for n, h in self._histograms.items():
                record = h.as_record()
                record["buckets"] = list(h.buckets)
                histograms[n] = record
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": histograms,
            }

    def delta(self, baseline: dict) -> dict:
        """Snapshot of everything that happened *since* ``baseline``.

        ``baseline`` is an earlier :meth:`snapshot` of this registry (or
        an empty/partial dict — missing instruments diff against zero).
        Counters and histogram counts/totals/buckets subtract; quantiles
        are re-estimated from the diffed buckets; gauges are
        point-in-time and pass through unchanged. Histogram ``min`` /
        ``max`` are lifetime extrema (extrema are not diffable) and are
        only used to clamp the interval quantile estimates.
        """
        current = self.snapshot()
        base_counters = baseline.get("counters", {})
        base_hists = baseline.get("histograms", {})
        counters = {
            name: value - base_counters.get(name, 0)
            for name, value in current["counters"].items()
        }
        histograms = {}
        for name, record in current["histograms"].items():
            base = base_hists.get(name, {})
            count = record["count"] - base.get("count", 0)
            total = record["total"] - base.get("total", 0.0)
            base_buckets = base.get("buckets") or [0] * len(record["buckets"])
            buckets = [c - b for c, b in zip(record["buckets"], base_buckets)]
            diffed = {
                "type": "histogram",
                "name": name,
                "count": count,
                "total": total,
                "min": record["min"],
                "max": record["max"],
                "mean": total / count if count else 0.0,
                "buckets": buckets,
            }
            for q in Histogram.QUANTILES:
                diffed[f"p{int(q * 100)}"] = estimate_quantile(
                    buckets, count, q, record["min"], record["max"]
                )
            histograms[name] = diffed
        return {
            "counters": counters,
            "gauges": dict(current["gauges"]),
            "histograms": histograms,
        }

    def records(self) -> list[dict]:
        """One flat record per instrument (the JSON-lines payload)."""
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        return [inst.as_record() for inst in instruments]

    def reset(self) -> None:
        """Drop every instrument (counters restart at zero)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_global_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide shared registry.

    Process-backend workers each see their own copy (metrics published
    in a worker process stay there); per-chunk executor timings survive
    because the executor records them on the submitting side.
    """
    return _global_registry


@contextlib.contextmanager
def scoped_registry(reg: MetricsRegistry | None = None):
    """Swap the process-wide registry for the duration of a block.

    Everything that publishes through :func:`registry` inside the block
    lands in a fresh (or caller-supplied) :class:`MetricsRegistry`; on
    exit the previous registry is restored untouched. This is the fix
    for global-state leakage across runs and tests — assert on the
    scoped registry's absolute values instead of diffing whatever the
    process accumulated earlier::

        with scoped_registry() as reg:
            service.predict(X)          # default-metrics path
            assert reg.counter_value("serve.requests") == len(X)

    The swap is process-global, not thread-scoped: concurrent threads
    resolving :func:`registry` inside the block publish into the scoped
    instance too (that is what the serving tests want — the worker
    thread's metrics land in the scope). Avoid overlapping scopes from
    unrelated threads.
    """
    global _global_registry
    previous = _global_registry
    _global_registry = reg if reg is not None else MetricsRegistry()
    try:
        yield _global_registry
    finally:
        _global_registry = previous
