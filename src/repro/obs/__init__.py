"""repro.obs — pipeline observability: spans, metrics, emitters.

Three small pieces, wired through every expensive stage of the RPM
pipeline (see ``docs/observability.md`` for the span and metric
catalogue):

* :class:`Tracer` / :data:`NOOP` — nestable wall-time spans with a
  zero-cost disabled default;
* :class:`MetricsRegistry` / :func:`registry` — process-wide counters,
  gauges and quantile-capable histograms (cache hits, dropped
  candidates, executor chunk timings, …), with snapshot/delta diffing
  and :func:`scoped_registry` isolation;
* :func:`format_tree` / :func:`write_jsonl` — human tree and
  JSON-lines emitters;
* :func:`to_prometheus` / :func:`to_json` — live export formats (the
  serve admin endpoint's ``/metrics`` and ``/metrics.json``);
* :func:`configure_logging` / :class:`JsonLogFormatter` — structured
  JSON log lines with request-ID correlation.

Typical use::

    from repro import RPMClassifier
    from repro.obs import Tracer, format_tree, registry, write_jsonl

    tracer = Tracer()
    clf = RPMClassifier(seed=0, trace=tracer).fit(X, y)
    print(format_tree(tracer))
    write_jsonl("metrics.jsonl", tracer=tracer, metrics=registry())
"""

from .emitters import format_tree, span_records, span_subtree, write_jsonl
from .export import (
    PROMETHEUS_CONTENT_TYPE,
    snapshot_from_jsonl,
    to_json,
    to_prometheus,
)
from .logging import JsonLogFormatter, configure_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    scoped_registry,
)
from .sketch import (
    DecayingSketch,
    DistributionSketch,
    ReferenceDistribution,
    ks_distance,
    psi,
)
from .tracer import NOOP, NullTracer, Span, Tracer

__all__ = [
    "NOOP",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "DecayingSketch",
    "DistributionSketch",
    "Gauge",
    "Histogram",
    "JsonLogFormatter",
    "MetricsRegistry",
    "NullTracer",
    "ReferenceDistribution",
    "Span",
    "Tracer",
    "configure_logging",
    "format_tree",
    "ks_distance",
    "psi",
    "registry",
    "resolve_tracer",
    "scoped_registry",
    "snapshot_from_jsonl",
    "span_records",
    "span_subtree",
    "to_json",
    "to_prometheus",
    "write_jsonl",
]


def resolve_tracer(trace) -> "Tracer | NullTracer":
    """Normalize the public ``trace=`` knob to a tracer instance.

    ``None``/``False`` → the shared no-op, ``True`` → a fresh
    :class:`Tracer`, an existing tracer → itself.
    """
    if trace is None or trace is False:
        return NOOP
    if trace is True:
        return Tracer()
    if isinstance(trace, (Tracer, NullTracer)):
        return trace
    raise TypeError(f"trace must be a bool, None or a Tracer, got {type(trace).__name__}")
