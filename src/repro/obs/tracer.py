"""Nestable wall-time spans over the RPM pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per
pipeline stage (``fit`` → ``params`` / ``mine`` / ``select`` →
``discretize`` / ``grammar`` / ``refine`` / ``transform`` …). Spans
carry the stage name, wall time, free-form metadata and a small counter
dict, and nest through two mechanisms:

* a per-thread stack — the common case: a span opened while another is
  active on the same thread becomes its child;
* an *ambient parent* (:meth:`Tracer.adopt`) — spans opened on worker
  threads, whose stacks are empty, attach under the span the
  orchestrator adopted before fanning out.

The default tracer everywhere is :data:`NOOP`, a stateless singleton
whose ``span()`` returns one shared no-op context manager — the
disabled path is two attribute lookups and no allocation, so tracing
costs nothing unless a real ``Tracer`` is passed in. Tracing never
touches the numeric pipeline: spans wrap computations, they do not
reorder or alter them, so traced runs stay bitwise identical to
untraced ones.
"""

from __future__ import annotations

import threading
import time

__all__ = ["NOOP", "NullTracer", "Span", "Tracer"]


class Span:
    """One timed stage: name, wall time, counters and children."""

    __slots__ = ("name", "meta", "start", "duration", "parent", "children", "counters")

    def __init__(self, name: str, meta: dict | None = None, parent: "Span | None" = None):
        self.name = name
        self.meta = meta or {}
        self.start = 0.0
        self.duration = 0.0
        self.parent = parent
        self.children: list[Span] = []
        self.counters: dict[str, float] = {}

    def add(self, counter: str, amount: float = 1) -> None:
        """Bump a span-local counter (shown next to the span's time)."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def annotate(self, **meta) -> None:
        """Attach free-form metadata to the span."""
        self.meta.update(meta)

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` over the subtree, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration:.3f}s, {len(self.children)} children)"


class _SpanHandle:
    """Context manager tying one span's lifetime to a ``with`` block."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._open(self._span)
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.duration = time.perf_counter() - self._span.start
        if exc_type is not None:
            self._span.meta.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class _AmbientHandle:
    """Restores the tracer's previous ambient parent on exit."""

    __slots__ = ("_tracer", "_span", "_previous")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._previous = None

    def __enter__(self) -> Span:
        self._previous = self._tracer._ambient
        self._tracer._ambient = self._span
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._tracer._ambient = self._previous
        return False


class Tracer:
    """Collects a forest of spans; safe to use from multiple threads.

    Structure mutations (attaching a span to its parent or to the root
    list) take a lock so thread-backend workers can attach children to
    the adopted ambient span concurrently. The per-thread open-span
    stack itself is ``threading.local`` and needs no locking.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ambient: Span | None = None

    # -- structure ------------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        parent = stack[-1] if stack else self._ambient
        span.parent = parent
        with self._lock:
            if parent is None:
                self.roots.append(span)
            else:
                parent.children.append(span)
        stack.append(span)

    def _close(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    # -- public API -----------------------------------------------------------

    def span(self, name: str, **meta) -> _SpanHandle:
        """Open a named child span for the duration of a ``with`` block."""
        return _SpanHandle(self, Span(name, meta or None))

    def adopt(self, span: Span) -> _AmbientHandle:
        """Make ``span`` the parent of spans opened on *other* threads.

        Use around an executor fan-out so worker-thread spans nest
        under the orchestrating stage instead of becoming roots.
        """
        return _AmbientHandle(self, span)

    def current(self) -> Span | None:
        """The innermost open span on this thread (or the ambient one)."""
        stack = self._stack()
        return stack[-1] if stack else self._ambient

    def count(self, counter: str, amount: float = 1) -> None:
        """Bump a counter on the current span (no-op without one)."""
        span = self.current()
        if span is not None:
            span.add(counter, amount)

    def total_duration(self) -> float:
        """Wall time summed over root spans."""
        return sum(span.duration for span in self.roots)


class _NullSpan:
    """Inert span returned by the disabled tracer."""

    __slots__ = ()
    name = "<null>"
    meta: dict = {}
    start = 0.0
    duration = 0.0
    parent = None
    children: tuple = ()
    counters: dict = {}

    def add(self, counter: str, amount: float = 1) -> None:
        pass

    def annotate(self, **meta) -> None:
        pass

    def walk(self, depth: int = 0):
        return iter(())


class _NullHandle:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_HANDLE = _NullHandle()


class NullTracer:
    """Disabled tracer: every operation returns a shared no-op object.

    Stateless, picklable (process-backend jobs carry it by value), and
    allocation-free on the ``span()`` path — the zero-cost default.
    """

    enabled = False
    roots: tuple = ()

    def span(self, name: str, **meta) -> _NullHandle:
        return _NULL_HANDLE

    def adopt(self, span) -> _NullHandle:
        return _NULL_HANDLE

    def current(self) -> None:
        return None

    def count(self, counter: str, amount: float = 1) -> None:
        pass

    def total_duration(self) -> float:
        return 0.0

    def __reduce__(self):
        return (NullTracer, ())


#: The shared disabled tracer — the default for every ``tracer=`` knob.
NOOP = NullTracer()
