"""Structured (JSON-lines) logging adapter for the serving stack.

Operational events — service start/stop, slow requests, timeouts,
model errors — go through stdlib :mod:`logging` so embedders keep full
control, but a log aggregator wants one JSON object per line with the
request ID as a first-class field, not free text. Two pieces:

* :class:`JsonLogFormatter` — formats every record as one JSON object
  (``ts``/``level``/``logger``/``message``) and lifts anything passed
  via ``extra=`` (``request_id``, ``batch_id``, ``latency_ms``, …) to
  top-level keys, which is how request correlation reaches the logs;
* :func:`configure_logging` — installs a stream handler with either
  the JSON or a conventional text formatter on the ``repro`` logger
  (idempotent: reconfiguring replaces the handler it installed, never
  the embedder's).

``rpm serve --log-format json`` is the CLI surface for this.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone

__all__ = ["JsonLogFormatter", "configure_logging"]

#: Attributes every LogRecord carries; anything else came in via
#: ``extra=`` and is surfaced as a top-level JSON key.
_STANDARD_ATTRS = frozenset(
    vars(logging.LogRecord("", 0, "", 0, "", (), None))
) | {"message", "asctime", "taskName"}

TEXT_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"


class JsonLogFormatter(logging.Formatter):
    """One JSON object per log record, ``extra=`` fields included."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": datetime.fromtimestamp(record.created, tz=timezone.utc).isoformat(),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _STANDARD_ATTRS or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=repr)


def configure_logging(
    log_format: str = "json",
    *,
    level: int = logging.INFO,
    stream=None,
    logger: str = "repro",
) -> logging.Logger:
    """Install a ``repro`` stream handler with the chosen formatter.

    ``log_format`` is ``"json"`` (one object per line) or ``"text"``
    (conventional ``asctime level name message``). The handler writes to
    ``stream`` (default ``sys.stderr``) and is tagged so a second call
    reconfigures rather than stacking duplicates. Returns the logger.
    """
    if log_format not in ("json", "text"):
        raise ValueError(f"log_format must be 'json' or 'text', got {log_format!r}")
    log = logging.getLogger(logger)
    for handler in list(log.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            log.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs_handler = True
    if log_format == "json":
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(logging.Formatter(TEXT_FORMAT))
    log.addHandler(handler)
    log.setLevel(level)
    return log
