"""Mergeable streaming sketches for distribution-drift monitoring.

A served RPM model degrades silently when the input distribution moves
away from what its representative patterns were mined on (the paper's
medical-alarm deployment is exactly this setting: sensor recalibration
or population shift). Detecting that movement needs a *distribution*
summary, not just counters and quantiles — and it needs to be:

* **streaming** — folded one resolved batch at a time, off the latency
  path, at O(bins) memory regardless of traffic;
* **mergeable** — the sharded tier folds per-shard sketches and merges
  them in the collector, so ``merge(a, b)`` must equal folding the
  concatenated streams (associative, pinned by the sketch test suite);
* **serializable** — the training-time reference distribution is
  written as ``reference.json`` next to the registry artifact and
  loaded back at serve time.

:class:`DistributionSketch` is the workhorse: a fixed-bin histogram
over either the registry's log-bucket 1-2-5 ladder
(:data:`~repro.obs.metrics.BUCKET_BOUNDS` — right for nonnegative
quantities like pattern distances and lengths) or a fixed linear grid
(right for roughly z-scored inputs such as per-series means).
:class:`DecayingSketch` adds exponential forgetting so the live side
answers "the recent window" instead of "everything since start-up".
:func:`psi` / :func:`ks_distance` compare two aligned sketches;
:class:`ReferenceDistribution` bundles the training-side sketches
(per-feature-column distances, input stats, per-pattern best-match
rates) into one JSON document.
"""

from __future__ import annotations

import bisect
import json
import time
from pathlib import Path

import numpy as np

from .metrics import BUCKET_BOUNDS

__all__ = [
    "DecayingSketch",
    "DistributionSketch",
    "ReferenceDistribution",
    "ks_distance",
    "psi",
]

#: Linear-grid defaults for roughly z-scored input statistics. Fixed
#: (not data-dependent) so the training-time reference and the live
#: serving sketches always share bin edges and stay comparable.
MEAN_RANGE = (-8.0, 8.0)
STD_RANGE = (0.0, 8.0)
LINEAR_BINS = 32

#: Probability floor used by :func:`psi` — the classic PSI epsilon
#: guard so empty bins contribute a finite, bounded term.
PSI_EPS = 1e-4


def _linear_edges(lo: float, hi: float, n_bins: int) -> tuple[float, ...]:
    if not hi > lo:
        raise ValueError(f"linear bins need hi > lo, got [{lo}, {hi}]")
    if n_bins < 2:
        raise ValueError(f"linear bins need n_bins >= 2, got {n_bins}")
    step = (hi - lo) / n_bins
    # Upper edges of the first n_bins-1 bins; everything above the last
    # edge lands in the overflow bucket, mirroring the log ladder.
    return tuple(lo + step * i for i in range(1, n_bins))


class DistributionSketch:
    """A fixed-bin streaming histogram that merges and serializes.

    ``edges`` are ascending bucket *upper bounds*; a value lands in the
    first bucket whose edge is >= the value (``bisect_left``), with one
    extra overflow bucket past the last edge — the exact scheme of
    :class:`repro.obs.metrics.Histogram`, generalized to caller-chosen
    edges. Counts are floats so :class:`DecayingSketch` can scale them.
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(self, edges=BUCKET_BOUNDS) -> None:
        edges = tuple(float(e) for e in edges)
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("sketch edges must be strictly ascending")
        if not edges:
            raise ValueError("sketch needs at least one bin edge")
        self.edges = edges
        self.counts = [0.0] * (len(edges) + 1)
        self.count = 0.0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    # -- construction ----------------------------------------------------------

    @classmethod
    def log_bins(cls) -> "DistributionSketch":
        """The registry's 1-2-5 log ladder (1µs … 5000): nonnegative
        quantities — pattern distances, series lengths, latencies."""
        return cls(BUCKET_BOUNDS)

    @classmethod
    def linear_bins(
        cls, lo: float, hi: float, n_bins: int = LINEAR_BINS
    ) -> "DistributionSketch":
        """A fixed linear grid over ``[lo, hi]`` — the right shape for
        roughly z-scored inputs where a log ladder would collapse
        everything near zero into one bucket."""
        return cls(_linear_edges(lo, hi, n_bins))

    # -- folding ---------------------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one observation (O(log bins))."""
        value = float(value)
        self.counts[bisect.bisect_left(self.edges, value)] += 1.0
        self.count += 1.0
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def extend(self, values) -> None:
        """Fold a batch of observations (vectorized)."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        idx = np.searchsorted(self.edges, values, side="left")
        for i, n in zip(*np.unique(idx, return_counts=True)):
            self.counts[int(i)] += float(n)
        self.count += float(values.size)
        self.total += float(values.sum())
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    def scale(self, factor: float) -> None:
        """Multiply every count by ``factor`` (exponential forgetting)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError(f"scale factor must be in [0, 1], got {factor}")
        self.counts = [c * factor for c in self.counts]
        self.count *= factor
        self.total *= factor

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "DistributionSketch") -> "DistributionSketch":
        """A new sketch equal to folding both input streams.

        Associative and commutative (``merge(a, b)`` has exactly the
        counts of folding the concatenated streams), which is what lets
        the sharded tier's collector aggregate per-shard sketches.
        """
        if self.edges != other.edges:
            raise ValueError(
                f"cannot merge sketches with different edges "
                f"({len(self.edges)} vs {len(other.edges)} bins)"
            )
        out = DistributionSketch(self.edges)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    # -- reading ---------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def probabilities(self) -> np.ndarray:
        """Per-bin probability mass (zeros when the sketch is empty)."""
        if self.count <= 0:
            return np.zeros(len(self.counts))
        return np.asarray(self.counts, dtype=float) / self.count

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, interpolated inside the crossing
        bin and clamped to the observed [min, max] range."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count <= 0:
            return 0.0
        target = q * self.count
        cum = 0.0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            prev = cum
            cum += n
            if cum >= target:
                lo = self.edges[i - 1] if i > 0 else self.min
                hi = self.edges[i] if i < len(self.edges) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi < lo:
                    hi = lo
                frac = (target - prev) / n
                return lo + frac * (hi - lo)
        return self.max

    def summary(self) -> dict:
        """Compact JSON-safe view for live introspection (``/drift``)."""
        empty = self.count <= 0
        return {
            "count": round(self.count, 3),
            "mean": self.mean,
            "min": None if empty else self.min,
            "max": None if empty else self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }

    # -- serialization ---------------------------------------------------------

    def as_record(self) -> dict:
        empty = self.count <= 0
        return {
            "kind": "sketch",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            # inf/-inf are not strict JSON; an empty sketch stores null.
            "min": None if empty else self.min,
            "max": None if empty else self.max,
        }

    @classmethod
    def from_record(cls, record: dict) -> "DistributionSketch":
        out = cls(record["edges"])
        counts = [float(c) for c in record["counts"]]
        if len(counts) != len(out.counts):
            raise ValueError(
                f"sketch record has {len(counts)} counts for "
                f"{len(out.edges)} edges"
            )
        out.counts = counts
        out.count = float(record["count"])
        out.total = float(record["total"])
        out.min = float("inf") if record["min"] is None else float(record["min"])
        out.max = float("-inf") if record["max"] is None else float(record["max"])
        return out


class DecayingSketch(DistributionSketch):
    """A sketch with exponential forgetting: "the recent window".

    Before each fold, existing counts are scaled by
    ``0.5 ** (n_new / half_life)`` — after ``half_life`` further
    observations, earlier traffic carries half its original weight, so
    the sketch tracks the recent ``~half_life``-observation window
    while a plain :class:`DistributionSketch` keeps the lifetime view.
    Decay is driven by observation count, not wall time, so behavior is
    deterministic and testable.
    """

    __slots__ = ("half_life",)

    def __init__(self, edges=BUCKET_BOUNDS, *, half_life: float = 256.0) -> None:
        if half_life <= 0:
            raise ValueError(f"half_life must be > 0, got {half_life}")
        super().__init__(edges)
        self.half_life = float(half_life)

    @classmethod
    def log_bins(cls, *, half_life: float = 256.0) -> "DecayingSketch":
        return cls(BUCKET_BOUNDS, half_life=half_life)

    @classmethod
    def linear_bins(
        cls, lo: float, hi: float, n_bins: int = LINEAR_BINS, *,
        half_life: float = 256.0,
    ) -> "DecayingSketch":
        return cls(_linear_edges(lo, hi, n_bins), half_life=half_life)

    def add(self, value: float) -> None:
        self.scale(0.5 ** (1.0 / self.half_life))
        super().add(value)

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        self.scale(0.5 ** (values.size / self.half_life))
        super().extend(values)


# ---------------------------------------------------------------------------
# Comparison functions
# ---------------------------------------------------------------------------


def _aligned_probabilities(expected, actual) -> tuple[np.ndarray, np.ndarray]:
    if expected.edges != actual.edges:
        raise ValueError(
            "cannot compare sketches with different bin edges "
            f"({len(expected.edges)} vs {len(actual.edges)})"
        )
    return expected.probabilities(), actual.probabilities()


def psi(expected: DistributionSketch, actual: DistributionSketch) -> float:
    """Population stability index between two aligned sketches.

    ``sum((a_i - e_i) * ln(a_i / e_i))`` over bins, with each
    probability floored at :data:`PSI_EPS` so empty bins contribute a
    finite term. Conventional reading: < 0.1 stable, 0.1–0.25 drifting,
    > 0.25 shifted. Returns 0.0 when either sketch is empty (no
    evidence is not drift).
    """
    if expected.count <= 0 or actual.count <= 0:
        return 0.0
    e, a = _aligned_probabilities(expected, actual)
    e = np.maximum(e, PSI_EPS)
    a = np.maximum(a, PSI_EPS)
    return float(np.sum((a - e) * np.log(a / e)))


def ks_distance(expected: DistributionSketch, actual: DistributionSketch) -> float:
    """Kolmogorov–Smirnov distance over binned CDFs: the largest
    absolute gap between the two cumulative distributions (0 when
    either sketch is empty)."""
    if expected.count <= 0 or actual.count <= 0:
        return 0.0
    e, a = _aligned_probabilities(expected, actual)
    return float(np.max(np.abs(np.cumsum(e) - np.cumsum(a))))


# ---------------------------------------------------------------------------
# Reference distribution
# ---------------------------------------------------------------------------


class ReferenceDistribution:
    """The training-time distribution a live service is compared against.

    Built from a model's archived training features (and optionally the
    raw training series), carrying:

    * ``columns`` — one log-bin sketch of distances per feature column
      (= per representative pattern);
    * ``best_match_rate`` — per-pattern fraction of training rows whose
      closest match (argmin feature) was that pattern;
    * ``input_mean`` / ``input_std`` — linear-bin sketches of per-row
      mean and standard deviation (empty when the raw series were not
      available — the model archive stores features, not inputs);
    * ``input_length`` — log-bin sketch of input lengths.

    Serialized as one JSON document (``reference.json`` in the model
    registry, covered by the registry's sha256 integrity scheme).
    """

    FORMAT = 1

    def __init__(
        self,
        columns: list,
        best_match_rate: list,
        input_mean: DistributionSketch,
        input_std: DistributionSketch,
        input_length: DistributionSketch,
        *,
        n_rows: int,
        created_at: float | None = None,
        source: str | None = None,
    ) -> None:
        self.columns = list(columns)
        self.best_match_rate = [float(r) for r in best_match_rate]
        if len(self.best_match_rate) != len(self.columns):
            raise ValueError(
                f"{len(self.columns)} columns but "
                f"{len(self.best_match_rate)} best-match rates"
            )
        self.input_mean = input_mean
        self.input_std = input_std
        self.input_length = input_length
        self.n_rows = int(n_rows)
        self.created_at = time.time() if created_at is None else float(created_at)
        self.source = source

    @property
    def n_columns(self) -> int:
        return len(self.columns)

    @classmethod
    def from_features(
        cls,
        features,
        X=None,
        *,
        series_length: int | None = None,
        source: str | None = None,
    ) -> "ReferenceDistribution":
        """Build a reference from a training feature matrix.

        ``features`` is the (n_rows, n_patterns) pattern-distance
        matrix (the ``train_features`` array every model archive
        carries). ``X`` is the raw (n_rows, m) training matrix when
        available; without it the input mean/std sketches stay empty
        and ``series_length`` (from the artifact metadata) populates
        the length sketch alone.
        """
        features = np.asarray(features, dtype=float)
        if features.ndim != 2:
            raise ValueError(
                f"features must be 2-D (rows, columns), got {features.ndim}-D"
            )
        n_rows, n_cols = features.shape
        columns = []
        for k in range(n_cols):
            sketch = DistributionSketch.log_bins()
            sketch.extend(features[:, k])
            columns.append(sketch)
        rates = [0.0] * n_cols
        if n_rows:
            best = np.argmin(features, axis=1)
            for k, n in zip(*np.unique(best, return_counts=True)):
                rates[int(k)] = float(n) / n_rows
        input_mean = DistributionSketch.linear_bins(*MEAN_RANGE)
        input_std = DistributionSketch.linear_bins(*STD_RANGE)
        input_length = DistributionSketch.log_bins()
        if X is not None:
            X = np.asarray(X, dtype=float)
            if X.ndim != 2:
                raise ValueError(f"X must be 2-D (rows, length), got {X.ndim}-D")
            input_mean.extend(X.mean(axis=1))
            input_std.extend(X.std(axis=1))
            input_length.extend(np.full(X.shape[0], float(X.shape[1])))
        elif series_length is not None:
            input_length.extend(np.full(n_rows, float(series_length)))
        return cls(
            columns,
            rates,
            input_mean,
            input_std,
            input_length,
            n_rows=n_rows,
            source=source,
        )

    # -- serialization ---------------------------------------------------------

    def as_record(self) -> dict:
        return {
            "format": self.FORMAT,
            "n_rows": self.n_rows,
            "n_columns": self.n_columns,
            "created_at": self.created_at,
            "source": self.source,
            "best_match_rate": self.best_match_rate,
            "columns": [sketch.as_record() for sketch in self.columns],
            "input_mean": self.input_mean.as_record(),
            "input_std": self.input_std.as_record(),
            "input_length": self.input_length.as_record(),
        }

    @classmethod
    def from_record(cls, record: dict) -> "ReferenceDistribution":
        if record.get("format") != cls.FORMAT:
            raise ValueError(
                f"unsupported reference format {record.get('format')!r} "
                f"(this build reads format {cls.FORMAT})"
            )
        return cls(
            [DistributionSketch.from_record(c) for c in record["columns"]],
            record["best_match_rate"],
            DistributionSketch.from_record(record["input_mean"]),
            DistributionSketch.from_record(record["input_std"]),
            DistributionSketch.from_record(record["input_length"]),
            n_rows=record["n_rows"],
            created_at=record["created_at"],
            source=record.get("source"),
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.as_record(), indent=indent, sort_keys=True)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "ReferenceDistribution":
        return cls.from_record(json.loads(Path(path).read_text()))

    def meta(self) -> dict:
        """Header-only view (no bucket arrays) for ``/drift``."""
        return {
            "format": self.FORMAT,
            "n_rows": self.n_rows,
            "n_columns": self.n_columns,
            "created_at": self.created_at,
            "source": self.source,
            "has_input_stats": self.input_mean.count > 0,
        }
