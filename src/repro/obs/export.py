"""Export a :class:`MetricsRegistry` for live scraping.

Two wire formats over the same snapshot:

* :func:`to_prometheus` — Prometheus text exposition (format 0.0.4).
  Dotted metric names become underscore names (``serve.requests`` →
  ``serve_requests_total``), counters gain the conventional ``_total``
  suffix, and histograms are rendered as *summaries*: one
  ``{quantile="…"}`` sample per surfaced quantile plus ``_sum`` and
  ``_count``. This is what ``GET /metrics`` on the serve admin
  endpoint returns.
* :func:`to_json` — the registry snapshot as one JSON document
  (quantiles included), for dashboards and the ``rpm metrics``
  subcommand. ``GET /metrics.json`` returns this.

Both accept either a live registry or a plain snapshot dict (from
:meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.delta`), so
diffs export exactly like live state. Empty registries still produce
valid documents: a comment-only Prometheus page and a JSON object with
empty sections.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "snapshot_from_jsonl",
    "to_json",
    "to_prometheus",
]

#: The Content-Type a Prometheus scraper expects from /metrics.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_START = re.compile(r"^[^a-zA-Z_:]")

#: Help text for the catalogued metrics (docs/observability.md).
_HELP = {
    "cache.hits": "Sliding-window statistics cache hits.",
    "cache.misses": "Sliding-window statistics cache misses.",
    "cache.evictions": "Sliding-window statistics cache LRU evictions.",
    "executor.chunks": "Chunks mapped by the parallel executor.",
    "executor.items": "Items mapped by the parallel executor.",
    "executor.chunk_seconds": "Per-chunk wall time, measured in-worker.",
    "serve.requests": "Prediction requests submitted (including invalid).",
    "serve.invalid": "Requests rejected by input validation.",
    "serve.batches": "Micro-batches run through the compiled model.",
    "serve.deadline_misses": "Requests timed out or delivered late.",
    "serve.errors": "Requests failed by a mid-batch model error.",
    "serve.batch_size": "Requests coalesced per model call.",
    "serve.queue_wait_seconds": "Submit-to-batch-pickup wait.",
    "serve.latency_seconds": "Submit-to-result latency per request.",
    "serve.queue_depth": "Requests currently queued.",
    "serve.overload": "Requests shed by admission control.",
    "serve.worker_recycles": "Graceful shard worker recycles.",
    "serve.worker_deaths": "Shard workers found dead and respawned.",
    "serve.redispatched": "Accepted requests re-dispatched after a worker loss.",
    "serve.drift.score": "Aggregate drift score: max per-column PSI of the "
    "recent window vs. the training reference.",
    "serve.drift.score_mean": "Mean per-column PSI of the recent window vs. "
    "the training reference (breadth of the shift).",
    "serve.drift.psi": "Per-feature-column PSI vs. the training reference.",
    "serve.drift.input_psi": "Input-statistic PSI (mean/std/length) vs. the "
    "training reference.",
    "serve.drift.best_match_rate": "Recent-window fraction of rows whose "
    "closest pattern is this one.",
    "serve.drift.alert": "1 while the drift score exceeds the alert threshold.",
    "serve.drift.rows": "Feature rows folded into the live drift sketches.",
    "serve.drift.dropped": "Rows dropped by the drift monitor (full backlog "
    "or a feature width that no longer matches the reference).",
    "serve.drift.fold_errors": "Drift fold batches dropped by an unexpected "
    "error (the fold thread survives and keeps folding).",
    "serve.drift.evaluations": "Drift evaluations run (PSI + gauge export).",
    "serve.drift.alerts": "Drift alert rising edges (flight-recorded).",
}

_LABELED = re.compile(r"^(?P<base>[^\[\]]+)\[(?P<labels>[^\[\]]+)\]$")


def _split_labels(name: str) -> tuple[str, str]:
    """Split ``serve.requests[shard=0]`` into base name and label pairs.

    Registries are flat string→value maps, so dimensional series encode
    their labels in the name with a bracket suffix
    (``name[key=value,key2=value2]`` — see
    :func:`repro.serve.shard.shard_metric`). The exporter turns the
    suffix back into Prometheus labels (``{shard="0"}``); unlabeled
    names pass through with an empty label string.
    """
    match = _LABELED.match(name)
    if match is None:
        return name, ""
    pairs = []
    for part in match.group("labels").split(","):
        key, _, value = part.partition("=")
        pairs.append(f'{_metric_name(key.strip())}="{value.strip()}"')
    return match.group("base"), ",".join(pairs)


def _metric_name(name: str) -> str:
    """A dotted registry name as a valid Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if _INVALID_START.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _as_snapshot(source) -> dict:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    if isinstance(source, dict):
        return source
    raise TypeError(
        f"expected a MetricsRegistry or a snapshot dict, got {type(source).__name__}"
    )


def _header(lines: list[str], source_name: str, metric: str, kind: str) -> None:
    help_text = _HELP.get(source_name)
    if help_text:
        lines.append(f"# HELP {metric} {help_text}")
    lines.append(f"# TYPE {metric} {kind}")


def to_prometheus(source) -> str:
    """Prometheus text exposition of a registry or snapshot dict.

    Bracket-labeled registry names (``serve.requests[shard=0]``) are
    exported as labeled samples of one base metric
    (``serve_requests_total{shard="0"}``); HELP/TYPE headers are
    emitted once per base metric, before its first sample.
    """
    snap = _as_snapshot(source)
    lines: list[str] = []
    seen: set[str] = set()

    def header_once(base: str, metric: str, kind: str) -> None:
        if metric not in seen:
            seen.add(metric)
            _header(lines, base, metric, kind)

    for name in sorted(snap.get("counters", {})):
        base, labels = _split_labels(name)
        metric = _metric_name(base)
        if not metric.endswith("_total"):
            metric += "_total"
        header_once(base, metric, "counter")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{metric}{suffix} {_format_value(snap['counters'][name])}")
    for name in sorted(snap.get("gauges", {})):
        base, labels = _split_labels(name)
        metric = _metric_name(base)
        header_once(base, metric, "gauge")
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{metric}{suffix} {_format_value(snap['gauges'][name])}")
    for name in sorted(snap.get("histograms", {})):
        record = snap["histograms"][name]
        base, labels = _split_labels(name)
        metric = _metric_name(base)
        header_once(base, metric, "summary")
        prefix = f"{labels}," if labels else ""
        for q in Histogram.QUANTILES:
            value = record.get(f"p{int(q * 100)}", 0.0)
            lines.append(f'{metric}{{{prefix}quantile="{q}"}} {_format_value(value)}')
        suffix = f"{{{labels}}}" if labels else ""
        lines.append(f"{metric}_sum{suffix} {_format_value(record.get('total', 0.0))}")
        lines.append(f"{metric}_count{suffix} {_format_value(record.get('count', 0))}")
    if not lines:
        lines.append("# (no metrics recorded)")
    return "\n".join(lines) + "\n"


def to_json(source, *, meta: dict | None = None, indent: int | None = None) -> str:
    """The registry snapshot as one JSON document.

    Histogram bucket arrays are dropped (they are a diffing detail);
    the derived quantiles stay. ``meta`` keys are merged at the top
    level under ``"meta"``.
    """
    snap = _as_snapshot(source)
    histograms = {}
    for name, record in snap.get("histograms", {}).items():
        histograms[name] = {k: v for k, v in record.items() if k != "buckets"}
    document = {
        "counters": dict(snap.get("counters", {})),
        "gauges": dict(snap.get("gauges", {})),
        "histograms": histograms,
    }
    if meta:
        document["meta"] = meta
    return json.dumps(document, indent=indent, sort_keys=True)


def snapshot_from_jsonl(path: str | Path) -> dict:
    """Rebuild a snapshot-shaped dict from a ``write_jsonl`` dump.

    Only instrument records contribute; span and meta lines are
    ignored. The result feeds straight into :func:`to_prometheus` /
    :func:`to_json`, so an offline dump renders exactly like a live
    scrape.
    """
    snap: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "counter":
            snap["counters"][record["name"]] = record["value"]
        elif kind == "gauge":
            snap["gauges"][record["name"]] = record["value"]
        elif kind == "histogram":
            snap["histograms"][record["name"]] = record
    return snap
