"""Render collected spans and metrics for humans and machines.

Two formats:

* :func:`format_tree` — an indented wall-time tree for terminals.
  Same-named siblings are aggregated into one ``name ×N`` line (a
  DIRECT search opens the same ``evaluate`` span dozens of times;
  per-occurrence lines would drown the signal).
* :func:`write_jsonl` / :func:`span_records` — JSON-lines, one object
  per span (pre-order, with ``depth``/``parent``) and one per metric
  instrument, for per-commit CI artifacts and offline analysis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .metrics import MetricsRegistry
from .tracer import Span, Tracer

__all__ = ["format_tree", "span_records", "span_subtree", "write_jsonl"]


class _Aggregate:
    """Same-named sibling spans folded into one display row."""

    __slots__ = ("name", "count", "total", "counters", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []


def _aggregate_siblings(spans: Sequence[Span]) -> list[_Aggregate]:
    groups: dict[str, _Aggregate] = {}
    for span in spans:
        agg = groups.get(span.name)
        if agg is None:
            agg = groups[span.name] = _Aggregate(span.name)
        agg.count += 1
        agg.total += span.duration
        for key, value in span.counters.items():
            agg.counters[key] = agg.counters.get(key, 0) + value
        agg.children.extend(span.children)
    return list(groups.values())


def _format_counters(counters: dict) -> str:
    if not counters:
        return ""
    parts = []
    for key in sorted(counters):
        value = counters[key]
        text = f"{value:g}" if isinstance(value, float) else str(value)
        parts.append(f"{key}={text}")
    return "  [" + " ".join(parts) + "]"


def _tree_lines(spans: Sequence[Span], indent: int, lines: list[str]) -> None:
    for agg in _aggregate_siblings(spans):
        label = agg.name if agg.count == 1 else f"{agg.name} ×{agg.count}"
        pad = "  " * indent
        lines.append(
            f"{pad}{label:<{max(1, 36 - len(pad))}} {agg.total:9.3f}s"
            + _format_counters(agg.counters)
        )
        _tree_lines(agg.children, indent + 1, lines)


def format_tree(tracer: Tracer) -> str:
    """Human-readable span tree with per-stage wall times."""
    if not tracer.roots:
        return "(no spans recorded)"
    lines: list[str] = []
    _tree_lines(list(tracer.roots), 0, lines)
    return "\n".join(lines)


def span_records(tracer: Tracer) -> Iterable[dict]:
    """Flat pre-order span records (``depth``/``parent`` keep the tree)."""
    for root in tracer.roots:
        yield from span_subtree(root)


def span_subtree(root: Span) -> list[dict]:
    """Pre-order records for one span and its descendants.

    Same shape as :func:`span_records` but rooted at a single span —
    the serve flight recorder uses this to attach a request's
    ``serve.batch`` subtree to its flight entry.
    """
    records = []
    for span, depth in root.walk():
        record = {
            "type": "span",
            "name": span.name,
            "start": span.start,
            "duration": span.duration,
            "depth": depth,
            "parent": span.parent.name if span.parent is not None else None,
        }
        if span.counters:
            record["counters"] = dict(span.counters)
        if span.meta:
            record["meta"] = {k: _jsonable(v) for k, v in span.meta.items()}
        records.append(record)
    return records


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


def write_jsonl(
    path: str | Path,
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
) -> Path:
    """Write spans and metric instruments to ``path`` as JSON lines.

    The first line is always a ``meta`` record carrying the span and
    instrument counts (plus any caller ``meta``), so even a run that
    recorded nothing — disabled tracer, empty registry — produces a
    valid, self-describing document instead of an empty file.
    """
    path = Path(path)
    spans: list[dict] = []
    if tracer is not None and tracer.enabled:
        spans = list(span_records(tracer))
    instruments = metrics.records() if metrics is not None else []
    header = {"type": "meta", "spans": len(spans), "instruments": len(instruments)}
    if meta:
        header.update(meta)
    with path.open("w", encoding="utf-8") as handle:
        for record in [header, *spans, *instruments]:
            handle.write(json.dumps(record) + "\n")
    return path
