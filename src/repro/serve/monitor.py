"""Drift monitoring: live feature/input sketches vs. a training reference.

The lifecycle registry archives every version's training features; this
module closes the loop the paper's medical-alarm deployment needs: the
serving tier continuously compares what it is *seeing* against what the
model was *mined on*, and raises a typed, observable alert when the two
diverge — before accuracy quietly rots.

* :func:`build_reference` computes a
  :class:`~repro.obs.sketch.ReferenceDistribution` from an archived
  model's ``train_features`` (and the raw training matrix when the
  caller has it); :meth:`ModelRegistry.publish(..., reference=True)
  <repro.serve.lifecycle.ModelRegistry.publish>` stores it as
  ``versions/<v>/reference.json`` under the registry's sha256
  integrity scheme.
* :class:`DriftMonitor` attaches to either serving tier and ingests
  resolved batches **off the latency path** — the same bounded-backlog
  + drain-thread pattern as
  :class:`~repro.serve.lifecycle.ShadowScorer`, so the prediction hot
  path never computes a sketch and predictions are bitwise identical
  monitor-on vs. monitor-off (pinned by the drift test suite and
  ``bench_drift.py``). Per-shard sketches are kept separately (the
  sharded collector offers rows tagged with their shard) and merged
  via :meth:`DistributionSketch.merge
  <repro.obs.sketch.DistributionSketch.merge>` at evaluation time.

On a row-count cadence the monitor computes per-column PSI against the
reference, publishes the ``serve.drift.*`` gauges (bracket labels:
``serve.drift.psi[column=3]``, ``serve.drift.best_match_rate[pattern=0]``),
and on an alert rising edge annotates the flight recorder with reason
``"drift"`` naming the most-shifted columns. ``GET /drift`` on the
admin endpoint serves :meth:`DriftMonitor.describe`.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque
from pathlib import Path

import numpy as np

from ..obs.metrics import MetricsRegistry, registry as global_registry
from ..obs.sketch import (
    MEAN_RANGE,
    STD_RANGE,
    DistributionSketch,
    ReferenceDistribution,
    psi,
)
from .flight import FlightRecord, FlightRecorder

__all__ = [
    "DriftMonitor",
    "build_reference",
    "offline_drift_report",
    "resolve_reference",
]

_log = logging.getLogger("repro.serve.monitor")

#: Input-statistic keys shared by live sketches, reference, and the
#: ``serve.drift.input_psi[stat=…]`` gauge labels.
_INPUT_STATS = ("mean", "std", "length")


def build_reference(
    artifact: str | Path, X=None, *, source: str | None = None
) -> ReferenceDistribution:
    """Reference distribution of one ``save_model`` artifact.

    Reads the archived ``train_features`` matrix (every artifact
    carries it) and the ``series_length`` metadata; pass the raw
    training matrix ``X`` to additionally populate the input mean/std
    sketches — the archive stores features, not inputs, so without it
    those sketches stay empty and input PSI is simply not computed.
    """
    artifact = Path(artifact)
    with np.load(artifact, allow_pickle=False) as archive:
        if "meta_json" not in archive or "train_features" not in archive:
            raise ValueError(
                f"{artifact} is not an RPM model archive "
                f"(no train_features/metadata record)"
            )
        meta = json.loads(bytes(archive["meta_json"]).decode())
        features = np.asarray(archive["train_features"], dtype=float)
    return ReferenceDistribution.from_features(
        features,
        X,
        series_length=meta.get("series_length"),
        source=source if source is not None else str(artifact),
    )


def resolve_reference(
    target, handle=None, *, n_columns: int | None = None
) -> ReferenceDistribution:
    """Resolve the drift reference a serving tier should compare against.

    ``target`` may be a ready :class:`ReferenceDistribution`, a path to
    a ``reference.json`` or a model ``.npz`` (built on the spot), or
    ``None`` — which resolves through ``handle``'s registry: the
    version's published ``reference.json`` when it has one
    (integrity-verified), otherwise built from the version's archived
    train features. ``n_columns`` cross-checks the reference against
    the served model's pattern count, catching a reference that
    outlived a re-mine.
    """
    if isinstance(target, ReferenceDistribution):
        ref = target
    elif target is None:
        reg = getattr(handle, "registry", None)
        version = getattr(handle, "version", None)
        if reg is None or not version:
            raise ValueError(
                "cannot resolve a drift reference: pass a "
                "ReferenceDistribution, a reference.json / model .npz "
                "path, or serve a registry version"
            )
        ref = reg.reference(version)
        if ref is None:
            ref = build_reference(
                reg.get(version).path, source=f"{version}/model.npz"
            )
    else:
        path = Path(target)
        if path.suffix == ".json":
            ref = ReferenceDistribution.load(path)
        else:
            ref = build_reference(path)
    if n_columns is not None and ref.n_columns != n_columns:
        raise ValueError(
            f"reference carries {ref.n_columns} feature columns but the "
            f"served model has {n_columns} patterns"
        )
    return ref


def _compare_columns(
    reference: ReferenceDistribution, live_columns: list
) -> tuple[list[float], float, float]:
    """Per-column PSI vs. the reference plus two aggregates.

    The alert score is the **max** per-column PSI: a single strongly
    shifted pattern column must trip the alert no matter how many quiet
    columns the model carries (a mean dilutes it by ``n_columns`` and
    loses sensitivity as models grow). The mean is computed alongside
    as a breadth signal — "how much of the model has moved" — and
    exported as ``serve.drift.score_mean``.
    """
    per_column = [
        psi(ref_col, live_col)
        for ref_col, live_col in zip(reference.columns, live_columns)
    ]
    score = float(np.max(per_column)) if per_column else 0.0
    score_mean = float(np.mean(per_column)) if per_column else 0.0
    return per_column, score, score_mean


def offline_drift_report(
    reference: ReferenceDistribution,
    features,
    X=None,
    *,
    threshold: float = 0.25,
) -> dict:
    """One-shot drift comparison of a feature matrix against a reference.

    The offline twin of the live monitor (``rpm drift``): build the
    candidate side's sketches with the same binning, compare column by
    column, and report the same payload shape ``GET /drift`` serves.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2:
        raise ValueError(
            f"features must be 2-D (rows, columns), got {features.ndim}-D"
        )
    if features.shape[1] != reference.n_columns:
        raise ValueError(
            f"feature matrix has {features.shape[1]} columns but the "
            f"reference carries {reference.n_columns}"
        )
    live = ReferenceDistribution.from_features(features, X)
    per_column, score, score_mean = _compare_columns(reference, live.columns)
    input_psi = {}
    for stat in _INPUT_STATS:
        ref_sketch = getattr(reference, f"input_{stat}")
        live_sketch = getattr(live, f"input_{stat}")
        if ref_sketch.count > 0 and live_sketch.count > 0:
            input_psi[stat] = psi(ref_sketch, live_sketch)
    columns = [
        {
            "column": k,
            "psi": per_column[k],
            "best_match_rate": live.best_match_rate[k],
            "reference_best_match_rate": reference.best_match_rate[k],
        }
        for k in range(reference.n_columns)
    ]
    return {
        "score": score,
        "score_mean": score_mean,
        "threshold": threshold,
        "alert": score > threshold,
        "rows": int(features.shape[0]),
        "reference": reference.meta(),
        "columns": columns,
        "input_psi": input_psi,
        "top_offenders": _top_offenders(per_column),
    }


def _top_offenders(per_column: list, n: int = 3) -> list:
    """The ``n`` most-shifted columns, largest PSI first."""
    order = sorted(range(len(per_column)), key=lambda k: -per_column[k])
    return [
        {"column": k, "psi": per_column[k]} for k in order[:n] if per_column[k] > 0.0
    ]


class _ShardSketches:
    """Live sketch set for one shard (or the whole single-process tier).

    ``recent`` sketches track the recent window — the distribution PSI
    is computed on; ``lifetime`` sketches never decay — the "since
    start-up" view ``/drift`` shows beside it. Decay is *not* applied
    here per fold: the monitor drives :meth:`decay` for **every** shard
    on its global observed-row clock, so a shard that stops receiving
    traffic still forgets — otherwise an idle shard's stale mass would
    sit in the merged recent window forever, diluting the PSI signal
    from the live shards.
    """

    __slots__ = ("recent", "lifetime", "inputs_recent", "inputs_lifetime",
                 "best_counts")

    def __init__(self, n_columns: int) -> None:
        self.recent = [DistributionSketch.log_bins() for _ in range(n_columns)]
        self.lifetime = [DistributionSketch.log_bins() for _ in range(n_columns)]
        self.inputs_recent = {
            "mean": DistributionSketch.linear_bins(*MEAN_RANGE),
            "std": DistributionSketch.linear_bins(*STD_RANGE),
            "length": DistributionSketch.log_bins(),
        }
        self.inputs_lifetime = {
            "mean": DistributionSketch.linear_bins(*MEAN_RANGE),
            "std": DistributionSketch.linear_bins(*STD_RANGE),
            "length": DistributionSketch.log_bins(),
        }
        self.best_counts = np.zeros(n_columns)

    def decay(self, factor: float) -> None:
        """Scale the recent-window state (recent sketches, input
        sketches, best-match counts) by ``factor``; lifetime sketches
        are untouched."""
        for sketch in self.recent:
            sketch.scale(factor)
        for sketch in self.inputs_recent.values():
            sketch.scale(factor)
        self.best_counts *= factor

    def fold(self, features: np.ndarray, means, stds, lengths) -> None:
        for k in range(features.shape[1]):
            self.recent[k].extend(features[:, k])
            self.lifetime[k].extend(features[:, k])
        for key, values in (("mean", means), ("std", stds), ("length", lengths)):
            self.inputs_recent[key].extend(values)
            self.inputs_lifetime[key].extend(values)
        best = np.argmin(features, axis=1)
        for k, count in zip(*np.unique(best, return_counts=True)):
            self.best_counts[int(k)] += float(count)


def _merge_all(sketches: list) -> DistributionSketch:
    merged = sketches[0]
    for sketch in sketches[1:]:
        merged = merged.merge(sketch)
    return merged


class DriftMonitor:
    """Streaming drift detector for one serving tier.

    The tier calls :meth:`observe` *after* a request's future has
    resolved (single-process ``_process`` tail, sharded collector
    thread) — an O(1) bounded-deque append. A dedicated thread drains
    the backlog, folds feature rows + input stats into per-shard
    sketches, and every ``eval_every`` rows merges the shards and
    compares the merged recent window against ``reference``:

    * ``serve.drift.score`` — aggregate drift score: the **max**
      per-column PSI, so one shifted pattern column trips the alert no
      matter how many quiet columns surround it;
    * ``serve.drift.score_mean`` — mean per-column PSI, the breadth
      companion ("how much of the model has moved");
    * ``serve.drift.psi[column=k]`` — per-feature-column PSI;
    * ``serve.drift.input_psi[stat=mean|std|length]`` — input-stat PSI
      (only for stats the reference carries);
    * ``serve.drift.best_match_rate[pattern=k]`` — recent-window
      fraction of rows whose best match is pattern ``k``;
    * ``serve.drift.alert`` — 1 while the score exceeds ``threshold``;
    * ``serve.drift.rows`` / ``dropped`` / ``fold_errors`` /
      ``evaluations`` / ``alerts`` counters.

    The recent window decays on the monitor's global observed-row
    clock: every drained batch scales **all** shards' recent sketches
    by ``0.5 ** (rows / window)``, so an idle shard's stale mass fades
    at the same rate as live traffic arrives instead of lingering in
    the merge forever.

    On the alert rising edge one flight-recorder entry with reason
    ``"drift"`` names the most-shifted columns, carrying the request
    and batch IDs of the row that crossed the line.
    """

    def __init__(
        self,
        reference: ReferenceDistribution,
        *,
        window: int = 256,
        threshold: float = 0.25,
        eval_every: int = 32,
        max_backlog: int = 4096,
        batch: int = 64,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {eval_every}")
        if max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
        self.reference = reference
        self.window = int(window)
        self.threshold = float(threshold)
        self.eval_every = int(eval_every)
        self.metrics = metrics if metrics is not None else global_registry()
        self.flight = flight
        self._batch = int(batch)
        self._backlog: deque = deque(maxlen=max_backlog)
        self._lock = threading.Lock()       # backlog + counters
        self._fold_lock = threading.Lock()  # sketch state + evaluation
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._shards: dict = {}  # shard key (int | None) -> _ShardSketches
        self._rows = 0
        self._dropped = 0
        self._fold_errors = 0
        self._evaluations = 0
        self._alerts = 0
        self._alerting = False
        self._rows_since_eval = 0
        self._last: dict | None = None  # most recent evaluation payload
        self._last_seen: tuple = (None, None, None)  # request_id, batch_id, shard

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "DriftMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="rpm-drift-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the fold thread (draining the backlog by default)."""
        if self._thread is None:
            return
        if drain:
            deadline = time.monotonic() + 10.0
            while self._backlog and time.monotonic() < deadline:
                self._wake.set()
                time.sleep(0.005)
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "DriftMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingress (called by the serving tier, post-resolve) --------------------

    def observe(
        self,
        request_id: str,
        series,
        features,
        *,
        batch_id: int | None = None,
        shard: int | None = None,
    ) -> None:
        """Enqueue one resolved OK request's row (O(1), lossy).

        ``series`` is the validated input, ``features`` its per-pattern
        distance row from the :class:`PredictionResult`. A full backlog
        drops the row (counted in ``serve.drift.dropped``) — drift
        monitoring is best-effort by design; it never applies
        backpressure to the serving path.
        """
        with self._lock:
            if len(self._backlog) == self._backlog.maxlen:
                self._dropped += 1
                self.metrics.inc("serve.drift.dropped")
                return
            self._backlog.append((request_id, series, features, batch_id, shard))
        self._wake.set()

    # -- fold thread -----------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            batch = self._take()
            if not batch:
                self._wake.wait(0.01)
                self._wake.clear()
                continue
            self._fold_safely(batch)
        batch = self._take()
        if batch:
            self._fold_safely(batch)

    def _take(self) -> list:
        with self._lock:
            take = min(len(self._backlog), self._batch)
            return [self._backlog.popleft() for _ in range(take)]

    def _fold_safely(self, batch: list) -> None:
        """Fold one drained batch, containing any failure.

        The fold thread has no supervisor: an uncaught exception would
        kill it silently and freeze every ``serve.drift.*`` gauge at
        its pre-crash value — the worst failure mode for a monitor,
        stale numbers that look healthy. Monitoring is best-effort by
        design, so a poisoned batch is counted, logged and dropped; the
        thread lives on.
        """
        try:
            self._fold(batch)
        except Exception:
            with self._lock:
                self._fold_errors += 1
            self.metrics.inc("serve.drift.fold_errors")
            _log.warning(
                "drift fold failed; dropping a batch of %d rows",
                len(batch),
                exc_info=True,
            )

    def _fold(self, batch: list) -> None:
        by_shard: dict = {}
        n_columns = self.reference.n_columns
        stale = 0
        for request_id, series, features, batch_id, shard in batch:
            row = np.asarray(features, dtype=float).ravel()
            if row.shape[0] != n_columns:
                # A hot-swap changed the pattern count under a stale
                # reference; rows of either width can share one drained
                # batch, so filter per row (never np.stack a mixed
                # batch) — count and drop rather than corrupt.
                stale += 1
                continue
            by_shard.setdefault(shard, []).append((series, row))
            self._last_seen = (request_id, batch_id, shard)
        if stale:
            self.metrics.inc("serve.drift.dropped", stale)
            with self._lock:
                self._dropped += stale
        if not by_shard:
            return
        total = sum(len(rows) for rows in by_shard.values())
        with self._fold_lock:
            # Decay every shard — including idle ones — on the global
            # observed-row clock before folding, so a shard that stops
            # receiving traffic forgets at the same rate as the live
            # ones instead of pinning stale mass in the merged window.
            factor = 0.5 ** (total / self.window)
            for sketches in self._shards.values():
                sketches.decay(factor)
            for shard, rows in by_shard.items():
                sketches = self._shards.get(shard)
                if sketches is None:
                    sketches = self._shards[shard] = _ShardSketches(n_columns)
                features = np.stack([row for _, row in rows])
                means = [float(np.mean(s)) for s, _ in rows]
                stds = [float(np.std(s)) for s, _ in rows]
                lengths = [float(np.size(s)) for s, _ in rows]
                sketches.fold(features, means, stds, lengths)
                n = features.shape[0]
                with self._lock:
                    self._rows += n
                    self._rows_since_eval += n
                self.metrics.inc("serve.drift.rows", n)
            if self._rows_since_eval >= self.eval_every:
                self._evaluate_locked()

    def flush(self) -> dict | None:
        """Fold everything queued and force an evaluation (for tests,
        shutdown reports and the serve-loop EOF path). Returns the
        evaluation payload, or ``None`` when nothing was ever folded."""
        while True:
            batch = self._take()
            if not batch:
                break
            self._fold_safely(batch)
        with self._fold_lock:
            if self._shards:
                self._evaluate_locked()
            return self._last

    # -- evaluation ------------------------------------------------------------

    def _evaluate_locked(self) -> None:
        """Merge per-shard sketches, compare, export. ``_fold_lock`` held."""
        self._rows_since_eval = 0
        self._evaluations += 1
        self.metrics.inc("serve.drift.evaluations")
        shard_sets = list(self._shards.values())
        if not shard_sets:
            return
        merged_recent = [
            _merge_all([s.recent[k] for s in shard_sets])
            for k in range(self.reference.n_columns)
        ]
        merged_lifetime = [
            _merge_all([s.lifetime[k] for s in shard_sets])
            for k in range(self.reference.n_columns)
        ]
        merged_inputs = {
            stat: _merge_all([s.inputs_recent[stat] for s in shard_sets])
            for stat in _INPUT_STATS
        }
        best_counts = np.sum([s.best_counts for s in shard_sets], axis=0)
        per_column, score, score_mean = _compare_columns(
            self.reference, merged_recent
        )
        input_psi = {}
        for stat in _INPUT_STATS:
            ref_sketch = getattr(self.reference, f"input_{stat}")
            if ref_sketch.count > 0 and merged_inputs[stat].count > 0:
                input_psi[stat] = psi(ref_sketch, merged_inputs[stat])
        total_best = float(best_counts.sum())
        best_rates = (
            (best_counts / total_best).tolist()
            if total_best > 0
            else [0.0] * self.reference.n_columns
        )
        alerting = score > self.threshold
        self.metrics.set_gauge("serve.drift.score", score)
        self.metrics.set_gauge("serve.drift.score_mean", score_mean)
        self.metrics.set_gauge("serve.drift.alert", 1.0 if alerting else 0.0)
        for k, value in enumerate(per_column):
            self.metrics.set_gauge(f"serve.drift.psi[column={k}]", value)
        for stat, value in input_psi.items():
            self.metrics.set_gauge(f"serve.drift.input_psi[stat={stat}]", value)
        for k, rate in enumerate(best_rates):
            self.metrics.set_gauge(
                f"serve.drift.best_match_rate[pattern={k}]", rate
            )
        offenders = _top_offenders(per_column)
        if alerting and not self._alerting:
            self._alerts += 1
            self.metrics.inc("serve.drift.alerts")
            request_id, batch_id, shard = self._last_seen
            message = (
                f"drift score {score:.4f} exceeds threshold "
                f"{self.threshold:.4f}; most shifted columns: "
                + ", ".join(
                    f"{o['column']} (psi {o['psi']:.3f})" for o in offenders
                )
            )
            if self.flight is not None:
                self.flight.record(
                    FlightRecord(
                        request_id=request_id or "drift",
                        status="ok",
                        reason="drift",
                        batch_id=batch_id,
                        shard=shard,
                        error_message=message,
                    )
                )
            _log.warning(
                "drift alert raised",
                extra={
                    "score": round(score, 4),
                    "threshold": self.threshold,
                    "top_offenders": offenders,
                },
            )
        self._alerting = alerting
        self._last = {
            "score": score,
            "score_mean": score_mean,
            "threshold": self.threshold,
            "alert": alerting,
            "columns": [
                {
                    "column": k,
                    "psi": per_column[k],
                    "best_match_rate": best_rates[k],
                    "reference_best_match_rate": self.reference.best_match_rate[k],
                    "recent": merged_recent[k].summary(),
                    "lifetime": merged_lifetime[k].summary(),
                }
                for k in range(self.reference.n_columns)
            ],
            "input_psi": input_psi,
            "input": {
                stat: merged_inputs[stat].summary() for stat in _INPUT_STATS
            },
            "top_offenders": offenders,
        }

    # -- reporting -------------------------------------------------------------

    def describe(self) -> dict:
        """JSON-safe monitor state (the admin ``GET /drift`` body)."""
        with self._lock:
            rows = self._rows
            dropped = self._dropped
            fold_errors = self._fold_errors
            evaluations = self._evaluations
            alerts = self._alerts
            backlog = len(self._backlog)
        with self._fold_lock:
            last = self._last
            shards = sorted(
                (key for key in self._shards if key is not None), key=int
            )
        payload = {
            "window": self.window,
            "threshold": self.threshold,
            "eval_every": self.eval_every,
            "rows": rows,
            "dropped": dropped,
            "fold_errors": fold_errors,
            "evaluations": evaluations,
            "alerts": alerts,
            "backlog": backlog,
            "shards": shards,
            "reference": self.reference.meta(),
            "score": None if last is None else last["score"],
            "score_mean": None if last is None else last["score_mean"],
            "alert": False if last is None else last["alert"],
            "columns": [] if last is None else last["columns"],
            "input_psi": {} if last is None else last["input_psi"],
            "input": {} if last is None else last["input"],
            "top_offenders": [] if last is None else last["top_offenders"],
        }
        # The same values as flat metric names, so `rpm metrics --route
        # drift --format prometheus` renders through the standard
        # exporter without bespoke formatting.
        gauges = {
            "serve.drift.score": 0.0 if last is None else last["score"],
            "serve.drift.score_mean": 0.0 if last is None else last["score_mean"],
            "serve.drift.alert": 1.0 if payload["alert"] else 0.0,
        }
        if last is not None:
            for entry in last["columns"]:
                gauges[f"serve.drift.psi[column={entry['column']}]"] = entry["psi"]
                gauges[
                    f"serve.drift.best_match_rate[pattern={entry['column']}]"
                ] = entry["best_match_rate"]
            for stat, value in last["input_psi"].items():
                gauges[f"serve.drift.input_psi[stat={stat}]"] = value
        payload["gauges"] = gauges
        return payload
