"""Flight recorder: a bounded ring of recent anomalous requests.

Counters and quantiles answer *"how is the service doing?"*; the flight
recorder answers *"what happened to this request?"*. It keeps the last
``capacity`` slow, timed-out, invalid or errored requests — each with
its request ID, batch ID, queue wait, deadline slack and the
``serve.batch`` span subtree it rode in — in a thread-safe
:class:`collections.deque` ring, so a long-running service retains
recent evidence at fixed memory cost while the steady stream of healthy
requests passes through unrecorded.

``GET /debug/requests`` on the admin endpoint serves this buffer;
``?id=req-N`` looks one entry up by the request ID that came back in
the :class:`~repro.serve.types.PredictionResult`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["FlightRecord", "FlightRecorder"]


@dataclass
class FlightRecord:
    """One captured request: correlation IDs, timings and its spans."""

    request_id: str
    status: str
    reason: str
    batch_id: int | None = None
    #: Shard that carried the request (``None`` on single-process tiers
    #: and for requests rejected before routing).
    shard: int | None = None
    queue_wait_ms: float = 0.0
    latency_ms: float = 0.0
    #: Milliseconds of deadline left at completion (negative = missed);
    #: ``None`` when the request carried no deadline.
    deadline_slack_ms: float | None = None
    error_code: str | None = None
    error_message: str | None = None
    #: Wall-clock capture time (``time.time()``), for operators.
    recorded_at: float = field(default_factory=time.time)
    #: The ``serve.batch`` span subtree, as emitter records.
    spans: list = field(default_factory=list)

    def as_record(self) -> dict:
        record = {
            "request_id": self.request_id,
            "status": self.status,
            "reason": self.reason,
            "batch_id": self.batch_id,
            "shard": self.shard,
            "queue_wait_ms": round(self.queue_wait_ms, 3),
            "latency_ms": round(self.latency_ms, 3),
            "deadline_slack_ms": (
                None
                if self.deadline_slack_ms is None
                else round(self.deadline_slack_ms, 3)
            ),
            "recorded_at": self.recorded_at,
        }
        if self.error_code:
            record["error_code"] = self.error_code
        if self.error_message:
            record["error_message"] = self.error_message
        if self.spans:
            record["spans"] = self.spans
        return record


class FlightRecorder:
    """Thread-safe bounded ring buffer of :class:`FlightRecord` entries.

    ``capacity`` bounds memory: when full, recording the next entry
    evicts the oldest (FIFO). ``capacity=0`` disables recording
    entirely — :meth:`record` becomes a no-op, which is how a service
    opts out of the (small) per-batch capture cost.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self._entries: deque[FlightRecord] = deque(maxlen=self.capacity or None)
        self._lock = threading.Lock()
        self._recorded = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def record(self, entry: FlightRecord) -> None:
        """Append one entry, evicting the oldest when full."""
        if not self.enabled:
            return
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1

    def records(
        self, *, limit: int | None = None, reason: str | None = None
    ) -> list[dict]:
        """Entries as plain dicts, newest first.

        ``reason`` keeps only entries captured for that reason
        (``slow``/``timeout``/``error``/``late``/``invalid``/
        ``overload``/``shadow-disagree``/``drift``); the limit applies
        after filtering, so ``limit=5, reason="drift"`` is the five
        newest drift entries, not five entries that may contain none.
        """
        with self._lock:
            entries = list(self._entries)
        entries.reverse()
        if reason is not None:
            entries = [entry for entry in entries if entry.reason == reason]
        if limit is not None:
            entries = entries[: max(0, limit)]
        return [entry.as_record() for entry in entries]

    def find(self, request_id: str) -> FlightRecord | None:
        """The retained entry for ``request_id``, or ``None``."""
        with self._lock:
            for entry in reversed(self._entries):
                if entry.request_id == request_id:
                    return entry
        return None

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_recorded(self) -> int:
        """Entries ever recorded, including those since evicted."""
        with self._lock:
            return self._recorded

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
