"""Embedded HTTP ops surface for a running :class:`PredictionService`.

A stdlib-only (:mod:`http.server`) admin endpoint, served from a
daemon thread so it never competes with the batching worker:

* ``GET /healthz``  — liveness: 200 while the batching worker runs;
* ``GET /readyz``   — readiness: 200 only once the model is warmed
  (Kubernetes-style split — alive-but-warming returns 503 here);
* ``GET /metrics``  — Prometheus text exposition of the service's
  registry (``serve_requests_total``, latency quantiles, …);
* ``GET /metrics.json`` — the same snapshot as one JSON document;
* ``GET /debug/requests`` — the flight recorder, newest first;
  ``?id=req-N`` retrieves one request by the ID its
  :class:`~repro.serve.types.PredictionResult` carried, ``?limit=K``
  caps the listing, ``?reason=drift`` (or ``slow``/``timeout``/…)
  keeps only entries captured for that reason;
* ``GET /shards``   — per-shard worker status (generation, pid,
  liveness, inflight) when the bound service is a sharded tier;
* ``GET /model``    — the live model: version, handle generation,
  bank summary, shadow report when a candidate is attached;
* ``GET /drift``    — the drift monitor: reference meta, live sketch
  summaries, per-column PSI and the alert state (404 while off);
* ``POST /swap``    — hot-swap the served model (body:
  ``{"version": "v2"}`` against the service's registry, or
  ``{"path": "model.npz"}``). The **only** mutating route, and it is
  restricted to loopback peers regardless of the bind host;
* ``GET /``         — route index.

Every GET route is read-only and the server binds loopback by default.
It observes the service — it never touches the prediction path, so
predictions are bitwise identical with the admin server on or off
(pinned by ``tests/test_serve_admin.py``).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..obs.export import PROMETHEUS_CONTENT_TYPE, to_json, to_prometheus

__all__ = ["AdminServer"]

_log = logging.getLogger("repro.serve.admin")

_ROUTES = {
    "/healthz": "liveness (batching worker running)",
    "/readyz": "readiness (model warmed)",
    "/metrics": "Prometheus text exposition",
    "/metrics.json": "metrics snapshot as JSON",
    "/debug/requests": "flight recorder (?id=req-N, ?limit=K, ?reason=slow|"
    "timeout|error|late|invalid|overload|shadow-disagree|drift)",
    "/shards": "per-shard worker status (sharded tiers only)",
    "/model": "live model version, generation and shadow report",
    "/drift": "drift monitor: reference meta, live sketches, per-column PSI, "
    "alert state",
    "/swap": 'POST {"version": ...} or {"path": ...} — hot-swap (loopback only)',
}

#: Every reason a flight entry can carry; ``?reason=`` filters are
#: validated against this set so a typo gets a 400 naming the options
#: instead of a silently empty listing.
_FLIGHT_REASONS = frozenset(
    {
        "slow",
        "timeout",
        "error",
        "late",
        "invalid",
        "overload",
        "shadow-disagree",
        "drift",
    }
)

#: Peers allowed to hit the mutating ``POST /swap`` route. The check is
#: on the *connecting* address, so even an admin server deliberately
#: bound to 0.0.0.0 never accepts a swap from off-host.
_LOOPBACK_PEERS = ("127.0.0.1", "::1", "::ffff:127.0.0.1")


class _AdminHandler(BaseHTTPRequestHandler):
    """Routes one GET; the bound service hangs off the server object."""

    server_version = "rpm-admin/1.0"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _log.debug("%s %s", self.address_string(), format % args)

    def _respond(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload) -> None:
        body = json.dumps(payload, indent=2, sort_keys=True).encode() + b"\n"
        self._respond(status, body, "application/json; charset=utf-8")

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        service = self.server.service  # type: ignore[attr-defined]
        try:
            if parsed.path == "/":
                self._json(200, {"routes": _ROUTES})
            elif parsed.path == "/healthz":
                alive = service.running
                self._json(200 if alive else 503, {"status": "ok" if alive else "down"})
            elif parsed.path == "/readyz":
                ready = service.ready
                self._json(
                    200 if ready else 503,
                    {"status": "ready" if ready else "warming"},
                )
            elif parsed.path == "/metrics":
                body = to_prometheus(service.metrics).encode()
                self._respond(200, body, PROMETHEUS_CONTENT_TYPE)
            elif parsed.path == "/metrics.json":
                body = to_json(service.metrics, indent=2).encode() + b"\n"
                self._respond(200, body, "application/json; charset=utf-8")
            elif parsed.path == "/debug/requests":
                self._debug_requests(service, query)
            elif parsed.path == "/shards":
                # Duck-typed: only sharded tiers expose shard_states().
                shard_states = getattr(service, "shard_states", None)
                if shard_states is None:
                    self._json(
                        404,
                        {"error": "this service is single-process (no shards)"},
                    )
                else:
                    self._json(200, {"shards": shard_states()})
            elif parsed.path == "/model":
                describe_model = getattr(service, "describe_model", None)
                if describe_model is None:
                    self._json(
                        404, {"error": "this service has no model lifecycle"}
                    )
                else:
                    self._json(200, describe_model())
            elif parsed.path == "/drift":
                # Duck-typed like /shards; 404 both when the service
                # cannot monitor drift and when monitoring is off.
                describe_drift = getattr(service, "describe_drift", None)
                payload = None if describe_drift is None else describe_drift()
                if payload is None:
                    self._json(
                        404,
                        {
                            "error": "drift monitoring is not enabled "
                            "(serve with --drift / attach_drift)"
                        },
                    )
                else:
                    self._json(200, payload)
            else:
                self._json(404, {"error": f"no route {parsed.path!r}", "routes": _ROUTES})
        except Exception as exc:  # never kill the handler thread
            _log.exception("admin request failed: %s %s", self.path, exc)
            try:
                self._json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        parsed = urlparse(self.path)
        service = self.server.service  # type: ignore[attr-defined]
        try:
            if parsed.path != "/swap":
                self._json(
                    404, {"error": f"no POST route {parsed.path!r}", "routes": _ROUTES}
                )
                return
            if self.client_address[0] not in _LOOPBACK_PEERS:
                self._json(
                    403,
                    {"error": "POST /swap is restricted to loopback peers"},
                )
                return
            swap = getattr(service, "swap", None)
            if swap is None:
                self._json(404, {"error": "this service does not support hot-swap"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw or b"{}")
            except ValueError:
                self._json(400, {"error": "request body must be JSON"})
                return
            target = body.get("version") or body.get("path")
            if not target:
                self._json(
                    400,
                    {"error": 'body must carry {"version": ...} or {"path": ...}'},
                )
                return
            try:
                installed = swap(target)
            except Exception as exc:
                # A refused swap (unknown version, failed integrity
                # check, gated promotion) leaves the old model serving.
                self._json(409, {"error": f"{type(exc).__name__}: {exc}"})
                return
            payload = {"swapped_to": installed}
            describe_model = getattr(service, "describe_model", None)
            if describe_model is not None:
                payload["model"] = describe_model()
            self._json(200, payload)
        except Exception as exc:  # never kill the handler thread
            _log.exception("admin request failed: %s %s", self.path, exc)
            try:
                self._json(500, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                pass

    def _debug_requests(self, service, query: dict) -> None:
        flight = service.flight
        request_id = query.get("id", [None])[0]
        if request_id is not None:
            entry = flight.find(request_id)
            if entry is None:
                self._json(
                    404,
                    {
                        "error": f"request {request_id!r} not in the flight recorder",
                        "hint": "only recent slow/error/timeout requests are retained",
                    },
                )
            else:
                self._json(200, entry.as_record())
            return
        limit = None
        if "limit" in query:
            try:
                limit = max(0, int(query["limit"][0]))
            except ValueError:
                self._json(400, {"error": "limit must be an integer"})
                return
        reason = query.get("reason", [None])[0]
        if reason is not None and reason not in _FLIGHT_REASONS:
            self._json(
                400,
                {
                    "error": f"unknown reason {reason!r}",
                    "reasons": sorted(_FLIGHT_REASONS),
                },
            )
            return
        payload = {
            "capacity": flight.capacity,
            "recorded_total": flight.total_recorded,
            "entries": flight.records(limit=limit, reason=reason),
        }
        if reason is not None:
            payload["reason"] = reason
        self._json(200, payload)


class AdminServer:
    """Lifecycle wrapper around the threaded admin HTTP server.

    ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` / :meth:`url` — tests and multi-instance deployments
    rely on this). The server runs on a daemon thread; :meth:`stop` is
    idempotent and blocks until the thread exits.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "AdminServer":
        if self._server is not None:
            return self
        server = ThreadingHTTPServer((self.host, self._requested_port), _AdminHandler)
        server.daemon_threads = True
        server.service = self.service  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="rpm-serve-admin", daemon=True
        )
        self._thread.start()
        _log.info("admin endpoint listening", extra={"url": self.url()})
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._server = None

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
