"""A fitted RPM model compiled for serving.

Training-side transforms (:func:`repro.core.transform.pattern_features`)
re-derive everything per call: pattern values are re-read, z-normalized
and hashed into the statistics cache on every request. A
:class:`CompiledModel` does that work once at load time instead:

* pattern values are grouped into **length buckets** and each pattern
  is pre-z-normalized (:func:`repro.runtime.kernel.prenormalize_pattern`
  — prototype, flatness flag and squared norm precomputed);
* per request, the sliding-window statistics of the input batch are
  built **once per bucket** and every pattern of that length reuses
  them — the same reuse the training cache provides, without the
  fingerprint hashing on the hot path;
* buckets fan out across a persistent
  :class:`~repro.runtime.executor.ParallelExecutor`.

Every floating-point expression matches the training transform, so
compiled predictions are bitwise identical to
``RPMClassifier.predict`` — the serve test suite pins this.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.transform import pattern_values, rotate_halves
from ..obs import resolve_tracer
from ..runtime.executor import BACKENDS, ParallelExecutor
from ..runtime.kernel import (
    KERNEL_BACKENDS,
    PrenormalizedPattern,
    SlidingWindowStats,
    prenormalize_pattern,
    resample_pattern,
)

__all__ = ["CompiledModel"]


class _Bucket:
    """All precompiled patterns sharing one effective length."""

    __slots__ = ("length", "cols", "pres")

    def __init__(self, length: int, cols: list[int], pres: list[PrenormalizedPattern]):
        self.length = length
        self.cols = cols
        self.pres = pres

    def __reduce__(self):
        # Process-backend workers receive buckets by value.
        return (_Bucket, (self.length, self.cols, self.pres))


def _bucket_block(args) -> tuple[list[int], np.ndarray]:
    """Feature columns of one bucket (module-level: picklable worker).

    Builds the bucket's sliding-window statistics for this batch and
    runs the whole precompiled per-length bucket through them in one
    batched kernel call — the bucket's patterns share one statistics
    build and, on the FFT backend, one series spectrum. The mat-vec
    backend's arithmetic is exactly the training transform's, so
    scheduling never changes a bit; ``auto`` resolves per (series
    length × bucket size) workload.
    """
    bucket, X, X_rot, backend = args
    stats = SlidingWindowStats(X, bucket.length)
    dists = stats.batch_best_distances_prenormalized(bucket.pres, backend=backend)
    if X_rot is not None:
        stats_rot = SlidingWindowStats(X_rot, bucket.length)
        dists = np.minimum(
            dists, stats_rot.batch_best_distances_prenormalized(bucket.pres, backend=backend)
        )
    return bucket.cols, dists.T


class CompiledModel:
    """A loaded RPM artifact with its pattern bank precompiled.

    Parameters
    ----------
    patterns:
        The fitted model's representative patterns (anything accepted
        by :func:`~repro.core.transform.pattern_values`), in feature
        order.
    classifier:
        The fitted downstream classifier (``predict`` over the
        pattern-distance feature matrix).
    rotation_invariant:
        Whether the transform also matches the halfway-rotated copy.
    classes:
        Class labels, for reporting.
    series_length:
        Training series length when the artifact records it; used for
        warm-up shapes and strict input validation upstream.
    n_jobs / parallel_backend:
        Worker fan-out for the per-bucket transform. Unlike the
        training classifier, the executor is *persistent* — a serving
        process must not pay pool start-up per request. Call
        :meth:`close` (or use the model as a context manager) to tear
        it down.
    kernel_backend:
        Distance-kernel implementation per bucket: ``'auto'`` (default
        — batched FFT above the calibrated crossover, exact mat-vec
        below it), ``'fft'``, or ``'matvec'``. Below the crossover
        ``'auto'`` is the bitwise-exact training arithmetic; above it
        distances agree to ~1e-9 relative (see ``docs/runtime.md``).
    dtype:
        Pattern-bank storage precision. ``'float64'`` (default) keeps
        the artifact values verbatim — the bitwise-equivalence
        guarantee holds. ``'float32'`` quantizes the bank (values
        round-tripped through float32; the kernel arithmetic stays
        float64), halving bank memory at the cost of tiny distance
        perturbations — such a model **must** prove its disagreement
        rate through shadow scoring before promotion (see
        ``docs/lifecycle.md``).
    trace:
        Observability knob (same contract as ``RPMClassifier(trace=)``).
    """

    #: Supported pattern-bank storage precisions.
    DTYPES = ("float64", "float32")

    def __init__(
        self,
        patterns,
        classifier,
        *,
        rotation_invariant: bool = False,
        classes=None,
        series_length: int | None = None,
        n_jobs: int = 1,
        parallel_backend: str = "thread",
        kernel_backend: str = "auto",
        dtype: str = "float64",
        trace=None,
    ) -> None:
        if not patterns:
            raise ValueError("CompiledModel needs a non-empty pattern bank")
        if dtype not in self.DTYPES:
            raise ValueError(f"dtype must be one of {self.DTYPES}, got {dtype!r}")
        values = [pattern_values(p) for p in patterns]
        if dtype == "float32":
            values = [v.astype(np.float32).astype(np.float64) for v in values]
        self._init_runtime(
            values,
            classifier,
            rotation_invariant=rotation_invariant,
            classes=classes,
            series_length=series_length,
            n_jobs=n_jobs,
            parallel_backend=parallel_backend,
            kernel_backend=kernel_backend,
            trace=trace,
        )
        self.dtype = dtype
        # Plans are per input length m (resampling depends on m); the
        # native plan — no pattern longer than the input — dominates in
        # practice and is compiled eagerly.
        self._native_plan = self._compile(self.max_pattern_length)

    def _init_runtime(
        self,
        values: list[np.ndarray],
        classifier,
        *,
        rotation_invariant: bool,
        classes,
        series_length: int | None,
        n_jobs: int,
        parallel_backend: str,
        kernel_backend: str,
        trace,
    ) -> None:
        """Everything except native-plan compilation (shared with
        :meth:`from_shared_bank`, which injects an already-built plan)."""
        if parallel_backend not in BACKENDS:
            raise ValueError(
                f"parallel_backend must be one of {BACKENDS}, got {parallel_backend!r}"
            )
        if kernel_backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"kernel_backend must be one of {KERNEL_BACKENDS}, got {kernel_backend!r}"
            )
        self.classifier = classifier
        self.kernel_backend = kernel_backend
        self.rotation_invariant = bool(rotation_invariant)
        self.classes = None if classes is None else np.asarray(classes)
        self.series_length = None if series_length is None else int(series_length)
        self.tracer = resolve_tracer(trace)
        self.dtype = "float64"  # __init__ overwrites after quantizing
        self._values = values
        self.n_patterns = len(self._values)
        self.max_pattern_length = max(v.size for v in self._values)
        self._executor = ParallelExecutor(n_jobs, parallel_backend)
        self._plans: dict[int, list[_Bucket]] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_classifier(cls, clf, **runtime) -> "CompiledModel":
        """Compile a fitted :class:`~repro.core.rpm.RPMClassifier`."""
        if not getattr(clf, "patterns_", None) or clf.classifier_ is None:
            raise RuntimeError("cannot compile an unfitted RPMClassifier")
        return cls(
            clf.patterns_,
            clf.classifier_,
            rotation_invariant=clf.rotation_invariant,
            classes=clf.classes_,
            series_length=getattr(clf, "n_timesteps_", None),
            **runtime,
        )

    @classmethod
    def load(cls, path: str | Path, **runtime) -> "CompiledModel":
        """Load a :func:`~repro.core.io.save_model` artifact and compile it.

        Application code should prefer the unified
        :meth:`repro.serve.lifecycle.ModelHandle.open` entry point,
        which also resolves registry versions and supports hot-swap;
        this classmethod remains as the low-level building block (see
        ``docs/api.md`` § Deprecated loading paths).
        """
        from ..core.io import load_model

        return cls.from_classifier(load_model(path), **runtime)

    @classmethod
    def from_shared_bank(
        cls,
        values: list[np.ndarray],
        native_plan: list[_Bucket],
        classifier,
        *,
        rotation_invariant: bool = False,
        classes=None,
        series_length: int | None = None,
        n_jobs: int = 1,
        parallel_backend: str = "thread",
        kernel_backend: str = "auto",
        trace=None,
    ) -> "CompiledModel":
        """Wrap an already-compiled bank (e.g. shared-memory views).

        ``values`` and ``native_plan`` are adopted as-is — no copy, no
        re-normalization — so a shard worker can serve straight out of
        read-only :mod:`multiprocessing.shared_memory` views built once
        by the parent (see :class:`repro.serve.shard.SharedPatternBank`).
        The caller owns the backing buffers' lifetime; they must outlive
        the model. Plans for *shorter* inputs are still compiled lazily
        (they resample, so they allocate fresh private arrays).
        """
        if not values:
            raise ValueError("CompiledModel needs a non-empty pattern bank")
        model = cls.__new__(cls)
        model._init_runtime(
            list(values),
            classifier,
            rotation_invariant=rotation_invariant,
            classes=classes,
            series_length=series_length,
            n_jobs=n_jobs,
            parallel_backend=parallel_backend,
            kernel_backend=kernel_backend,
            trace=trace,
        )
        model._native_plan = list(native_plan)
        return model

    def _compile(self, m: int) -> list[_Bucket]:
        """Length-bucketed, pre-z-normalized bank for inputs of length ``m``."""
        grouped: dict[int, _Bucket] = {}
        for col, values in enumerate(self._values):
            effective = resample_pattern(values, m) if values.size > m else values
            bucket = grouped.get(effective.size)
            if bucket is None:
                bucket = grouped[effective.size] = _Bucket(effective.size, [], [])
            bucket.cols.append(col)
            bucket.pres.append(prenormalize_pattern(effective))
        return [grouped[length] for length in sorted(grouped)]

    def _plan_for(self, m: int) -> list[_Bucket]:
        if m >= self.max_pattern_length:
            return self._native_plan
        plan = self._plans.get(m)
        if plan is None:
            plan = self._plans[m] = self._compile(m)
        return plan

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut the persistent executor down (idempotent)."""
        self._executor.close()

    def __enter__(self) -> "CompiledModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- inference -------------------------------------------------------------

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Pattern-distance features ``(n, K)`` of a request batch.

        Bitwise identical to the training-side
        :func:`~repro.core.transform.pattern_features` on the same
        rows, for every executor configuration.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[1] < 2:
            raise ValueError(f"series need >= 2 points, got {X.shape[1]}")
        with self.tracer.span("compiled.transform") as span:
            span.add("transform.series", X.shape[0])
            span.add("transform.patterns", self.n_patterns)
            plan = self._plan_for(X.shape[1])
            X_rot = rotate_halves(X) if self.rotation_invariant else None
            jobs = [(bucket, X, X_rot, self.kernel_backend) for bucket in plan]
            if self._executor.backend == "serial" or len(jobs) == 1:
                blocks = [_bucket_block(job) for job in jobs]
            else:
                blocks = self._executor.map(_bucket_block, jobs)
            out = np.empty((X.shape[0], self.n_patterns))
            for cols, block in blocks:
                out[:, cols] = block
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class labels for every row of ``X``."""
        with self.tracer.span("compiled.predict"):
            return self.classifier.predict(self.transform(X))

    def warmup(self, n: int = 4, length: int | None = None) -> None:
        """Push one deterministic dummy batch through the full path.

        Touches plan compilation, window statistics, the per-pattern
        mat-vecs and the classifier so the first real request does not
        pay first-call costs (allocator warm-up, BLAS thread spin-up,
        lazy pool creation).
        """
        length = length or self.series_length or self.max_pattern_length
        t = np.arange(int(length), dtype=float)
        batch = np.stack([np.sin(0.1 * t + k) for k in range(max(1, n))])
        with self.tracer.span("compiled.warmup"):
            self.predict(batch)

    def describe(self) -> str:
        """One-line bank summary for logs."""
        lengths = ", ".join(
            f"{b.length}×{len(b.cols)}" for b in self._native_plan
        )
        return (
            f"CompiledModel({self.n_patterns} patterns, "
            f"buckets [{lengths}], rotation_invariant={self.rotation_invariant}, "
            f"kernel_backend={self.kernel_backend}, dtype={self.dtype})"
        )
