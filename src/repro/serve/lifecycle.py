"""Model lifecycle: versioned registry, hot-swap handle, shadow scoring.

RPM's trained model is a *tiny* set of representative patterns, which
makes multi-version serving cheap: several pattern banks fit in memory
at once, so a production tier can warm, compare and swap models without
downtime. This module is that lifecycle:

* :class:`ModelRegistry` — versioned artifacts under one root
  directory, each with lineage metadata (training-data fingerprint,
  params, bench scores, parent version) and integrity checks (sha256 +
  the :mod:`repro.core.io` ``format_version`` validation) on publish
  and on read. ``promote`` / ``rollback`` move the ``CURRENT`` pointer;
  the promotion history is append-only.
* :class:`ModelHandle` — the indirection every serving tier routes
  through. The hot path reads one pointer
  (:attr:`ModelHandle.model`); :meth:`ModelHandle.swap` warms the
  incoming :class:`~repro.serve.compiled.CompiledModel`, flips that
  pointer atomically, and closes the outgoing bank only once the last
  in-flight batch holding a lease on it has finished — no request is
  ever dropped or served by a half-closed model.
* :class:`ShadowScorer` — mirrors a configurable fraction of OK
  traffic onto a candidate model **off the latency path** (a bounded
  backlog drained by its own thread; saturation drops shadow work, not
  live requests), reporting disagreement rate and latency delta
  through ``serve.shadow.*`` metrics and the flight recorder.
* :class:`PromotionGate` — the accuracy-delta gate: a candidate (for
  example a float32-quantized bank, ``CompiledModel(dtype="float32")``)
  is only promotable when its shadow disagreement rate and latency
  regression stay under the gate's thresholds. Symbolic-pattern models
  trade representation fidelity for speed (MrSQM), so a re-mined or
  quantized artifact must *prove* its disagreement rate first.

See ``docs/lifecycle.md`` for the registry layout, swap semantics and
the shadow metric catalogue.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
import shutil
import tempfile
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..core.io import ModelFormatError, load_model
from ..obs.metrics import MetricsRegistry, registry as global_registry
from .compiled import CompiledModel
from .flight import FlightRecord, FlightRecorder

__all__ = [
    "GateDecision",
    "ModelHandle",
    "ModelRegistry",
    "ModelVersion",
    "PromotionGate",
    "RegistryError",
    "RegistryIntegrityError",
    "ShadowReport",
    "ShadowScorer",
]

_log = logging.getLogger("repro.serve.lifecycle")

_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Registry aliases resolved by :meth:`ModelRegistry.get`.
CURRENT = "current"
LATEST = "latest"


class RegistryError(ValueError):
    """A registry operation that cannot be honored (unknown version,
    duplicate publish, retired target, gated promotion, …)."""


class RegistryIntegrityError(RegistryError):
    """A registry artifact whose bytes no longer match its recorded
    sha256 — the artifact was modified or corrupted after publish."""


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModelVersion:
    """One published artifact plus its lineage metadata."""

    version: str
    path: Path
    #: sha256 of the artifact bytes at publish time (integrity anchor).
    sha256: str
    size_bytes: int
    #: Fingerprint of the training data baked into the artifact
    #: (sha256 over the train feature matrix + labels).
    fingerprint: str
    #: Version this one was derived from (re-mine, quantization, …).
    parent: str | None = None
    created_at: float = 0.0
    status: str = "active"  # active | retired
    #: Training parameters worth recording (free-form, JSON-safe).
    params: dict = field(default_factory=dict)
    #: Bench scores recorded at publish (e.g. test error).
    scores: dict = field(default_factory=dict)
    notes: str = ""
    series_length: int | None = None
    n_patterns: int | None = None
    #: sha256 of ``reference.json`` when the version was published with
    #: ``reference=True`` (``None`` otherwise) — same integrity anchor
    #: as the artifact hash, checked by :meth:`ModelRegistry.verify`.
    reference_sha256: str | None = None

    def as_record(self) -> dict:
        record = asdict(self)
        record["path"] = str(self.path)
        return record


class ModelRegistry:
    """Versioned model artifacts under one root directory.

    Layout (everything human-inspectable, nothing pickled)::

        root/
          versions/<version>/model.npz    # the save_model artifact, verbatim
          versions/<version>/meta.json    # lineage + integrity metadata
          CURRENT                          # promoted version name
          HISTORY                          # append-only promotion log

    ``publish`` validates the artifact up front (it must load through
    :func:`repro.core.io.load_model`, which enforces ``format_version``)
    and records its sha256; ``get``/``open`` re-verify the hash so a
    corrupted artifact fails loudly instead of serving garbage.
    Publishes are atomic: the artifact is copied to a temp name and
    renamed into place, and ``meta.json`` is written last.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._versions_dir = self.root / "versions"
        self._versions_dir.mkdir(parents=True, exist_ok=True)

    # -- helpers ---------------------------------------------------------------

    def _dir(self, version: str) -> Path:
        return self._versions_dir / version

    def _meta_path(self, version: str) -> Path:
        return self._dir(version) / "meta.json"

    def reference_path(self, version: str) -> Path:
        """Where a version's ``reference.json`` lives (may not exist)."""
        return self._dir(self.get(version).version) / "reference.json"

    @staticmethod
    def _sha256(path: Path) -> str:
        digest = hashlib.sha256()
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest()

    @staticmethod
    def _fingerprint(path: Path) -> str:
        """Training-data fingerprint: hash of the train matrix + labels."""
        digest = hashlib.sha256()
        with np.load(path, allow_pickle=False) as archive:
            digest.update(np.ascontiguousarray(archive["train_features"]).tobytes())
            digest.update(np.ascontiguousarray(archive["train_labels"]).tobytes())
        return digest.hexdigest()

    def _read_meta(self, version: str) -> ModelVersion:
        meta_path = self._meta_path(version)
        if not meta_path.exists():
            raise RegistryError(
                f"unknown model version {version!r} in registry {self.root}"
            )
        record = json.loads(meta_path.read_text())
        record["path"] = self._dir(version) / "model.npz"
        return ModelVersion(**record)

    def _write_meta(self, mv: ModelVersion) -> None:
        record = mv.as_record()
        del record["path"]  # derivable; keeps the registry relocatable
        tmp = self._meta_path(mv.version).with_suffix(".json.tmp")
        tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self._meta_path(mv.version))

    # -- publish / list / get / retire -----------------------------------------

    def publish(
        self,
        artifact: str | Path,
        *,
        version: str | None = None,
        parent: str | None = None,
        params: dict | None = None,
        scores: dict | None = None,
        notes: str = "",
        reference: bool = False,
    ) -> ModelVersion:
        """Copy one ``save_model`` artifact into the registry.

        The artifact is fully validated first — it must load through
        :func:`~repro.core.io.load_model` (typed
        :class:`~repro.core.io.ModelFormatError` on a foreign or stale
        archive) — so nothing unreadable is ever published. ``version``
        defaults to ``v<N+1>``; ``parent`` records lineage and must
        already be published. With ``reference=True`` the training-time
        :class:`~repro.obs.sketch.ReferenceDistribution` is computed
        from the archived train features and stored next to the
        artifact as ``reference.json``, hash-anchored in the version
        metadata (see :meth:`reference`).
        """
        artifact = Path(artifact)
        clf = load_model(artifact)  # raises ModelFormatError with the path
        if version is None:
            version = f"v{len(self.list_versions()) + 1}"
        if not _VERSION_RE.match(version):
            raise RegistryError(
                f"invalid version name {version!r} (letters, digits, '._-' only)"
            )
        if version in (CURRENT, LATEST):
            raise RegistryError(f"{version!r} is a reserved registry alias")
        if self._meta_path(version).exists():
            raise RegistryError(
                f"version {version!r} already published in {self.root}"
            )
        if parent is not None:
            self._read_meta(parent)  # must exist
        target_dir = self._dir(version)
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / "model.npz"
        with tempfile.NamedTemporaryFile(
            dir=target_dir, suffix=".npz.tmp", delete=False
        ) as tmp:
            tmp_path = Path(tmp.name)
        shutil.copyfile(artifact, tmp_path)
        os.replace(tmp_path, target)
        reference_sha256 = None
        if reference:
            # Local import: monitor depends only on obs + flight, so
            # lifecycle -> monitor is acyclic, but keeping it out of the
            # module header makes the one-way direction explicit.
            from .monitor import build_reference

            ref = build_reference(target, source=f"{version}/model.npz")
            ref_tmp = target_dir / "reference.json.tmp"
            ref.save(ref_tmp)
            os.replace(ref_tmp, target_dir / "reference.json")
            reference_sha256 = self._sha256(target_dir / "reference.json")
        mv = ModelVersion(
            version=version,
            path=target,
            sha256=self._sha256(target),
            size_bytes=target.stat().st_size,
            fingerprint=self._fingerprint(target),
            parent=parent,
            created_at=time.time(),
            params=dict(params or {}),
            scores=dict(scores or {}),
            notes=notes,
            series_length=getattr(clf, "n_timesteps_", None),
            n_patterns=len(clf.patterns_),
            reference_sha256=reference_sha256,
        )
        self._write_meta(mv)
        _log.info(
            "model version published",
            extra={"version": version, "sha256": mv.sha256[:12], "parent": parent},
        )
        return mv

    def list_versions(self) -> list[ModelVersion]:
        """Every published version, oldest first."""
        versions = [
            self._read_meta(entry.name)
            for entry in sorted(self._versions_dir.iterdir())
            if (entry / "meta.json").exists()
        ]
        return sorted(versions, key=lambda mv: (mv.created_at, mv.version))

    def get(self, version: str) -> ModelVersion:
        """Resolve one version (or the ``current``/``latest`` alias)."""
        if version == CURRENT:
            return self._read_meta(self._require_current())
        if version == LATEST:
            versions = self.list_versions()
            if not versions:
                raise RegistryError(f"registry {self.root} is empty")
            return versions[-1]
        return self._read_meta(version)

    def verify(self, version: str) -> ModelVersion:
        """Integrity check: the artifact's bytes still match publish.

        Versions published with ``reference=True`` additionally verify
        their ``reference.json`` against the recorded hash — a tampered
        or deleted reference fails as loudly as a tampered model.
        """
        mv = self.get(version)
        actual = self._sha256(mv.path)
        if actual != mv.sha256:
            raise RegistryIntegrityError(
                f"artifact for version {mv.version!r} fails its integrity "
                f"check (sha256 {actual[:12]}… != published {mv.sha256[:12]}…)"
            )
        if mv.reference_sha256 is not None:
            ref_path = mv.path.parent / "reference.json"
            if not ref_path.exists():
                raise RegistryIntegrityError(
                    f"version {mv.version!r} was published with a reference "
                    f"distribution but {ref_path} is missing"
                )
            actual_ref = self._sha256(ref_path)
            if actual_ref != mv.reference_sha256:
                raise RegistryIntegrityError(
                    f"reference.json for version {mv.version!r} fails its "
                    f"integrity check (sha256 {actual_ref[:12]}… != published "
                    f"{mv.reference_sha256[:12]}…)"
                )
        return mv

    def reference(self, version: str = CURRENT):
        """The integrity-verified
        :class:`~repro.obs.sketch.ReferenceDistribution` of a version,
        or ``None`` when the version was published without one."""
        from ..obs.sketch import ReferenceDistribution

        mv = self.verify(version)
        if mv.reference_sha256 is None:
            return None
        return ReferenceDistribution.load(mv.path.parent / "reference.json")

    def retire(self, version: str) -> ModelVersion:
        """Mark a version retired (refused while it is CURRENT)."""
        mv = self.get(version)
        if self.current() == mv.version:
            raise RegistryError(
                f"cannot retire {mv.version!r}: it is the promoted CURRENT "
                f"version (promote or roll back first)"
            )
        mv = ModelVersion(**{**mv.as_record(), "path": mv.path, "status": "retired"})
        self._write_meta(mv)
        return mv

    # -- promotion -------------------------------------------------------------

    def current(self) -> str | None:
        """The promoted version name, or ``None`` before any promote."""
        pointer = self.root / "CURRENT"
        if not pointer.exists():
            return None
        name = pointer.read_text().strip()
        return name or None

    def _require_current(self) -> str:
        name = self.current()
        if name is None:
            raise RegistryError(
                f"registry {self.root} has no promoted version yet"
            )
        return name

    def promote(
        self,
        version: str,
        *,
        gate: "PromotionGate | None" = None,
        report: "ShadowReport | None" = None,
    ) -> ModelVersion:
        """Point ``CURRENT`` at ``version`` (integrity-checked).

        With a ``gate``, a :class:`ShadowReport` is mandatory and the
        promotion is refused (typed :class:`RegistryError`) when the
        candidate's disagreement rate or latency regression exceeds the
        gate — the MrSQM lesson: quantized/re-mined symbolic models
        must prove their fidelity before taking traffic.
        """
        mv = self.verify(version)
        if mv.status == "retired":
            raise RegistryError(f"cannot promote retired version {mv.version!r}")
        if gate is not None:
            if report is None:
                raise RegistryError(
                    f"promotion of {mv.version!r} is gated: a shadow report "
                    f"is required (run shadow scoring first)"
                )
            decision = gate.evaluate(report)
            if not decision.allowed:
                raise RegistryError(
                    f"promotion of {mv.version!r} blocked by gate: "
                    + "; ".join(decision.reasons)
                )
        previous = self.current()
        tmp = self.root / "CURRENT.tmp"
        tmp.write_text(mv.version + "\n")
        os.replace(tmp, self.root / "CURRENT")
        with open(self.root / "HISTORY", "a") as history:
            history.write(
                json.dumps(
                    {
                        "at": time.time(),
                        "promoted": mv.version,
                        "previous": previous,
                    }
                )
                + "\n"
            )
        _log.info(
            "model version promoted",
            extra={"version": mv.version, "previous": previous},
        )
        return mv

    def rollback(self) -> ModelVersion:
        """Move ``CURRENT`` back to the previously promoted version."""
        history_path = self.root / "HISTORY"
        if not history_path.exists():
            raise RegistryError(f"registry {self.root} has no promotion history")
        entries = [
            json.loads(line)
            for line in history_path.read_text().splitlines()
            if line.strip()
        ]
        if not entries or entries[-1]["previous"] is None:
            raise RegistryError("no earlier promotion to roll back to")
        return self.promote(entries[-1]["previous"])

    # -- loading ---------------------------------------------------------------

    def open(self, version: str = CURRENT, **runtime) -> CompiledModel:
        """Integrity-verified :class:`CompiledModel` of one version."""
        mv = self.verify(version)
        return CompiledModel.load(mv.path, **runtime)


# ---------------------------------------------------------------------------
# Model handle: the hot-swap indirection
# ---------------------------------------------------------------------------


class _ModelLease:
    """Refcounted ownership of one compiled model generation.

    The handle holds one reference; every in-flight batch holds one
    more for its duration. ``retire()`` drops the handle's reference —
    the model's executor is closed exactly when the last batch lease is
    released, so a swap never closes a bank under an in-flight batch.
    """

    __slots__ = ("model", "version", "generation", "_refs", "_retired", "_lock")

    def __init__(self, model: CompiledModel, version: str | None, generation: int):
        self.model = model
        self.version = version
        self.generation = generation
        self._refs = 1  # the handle's own reference
        self._retired = False
        self._lock = threading.Lock()

    def acquire(self) -> "_ModelLease":
        with self._lock:
            self._refs += 1
        return self

    def release(self) -> None:
        with self._lock:
            self._refs -= 1
            close = self._retired and self._refs == 0
        if close:
            self.model.close()

    def retire(self) -> None:
        with self._lock:
            if self._retired:
                return
            self._retired = True
            self._refs -= 1
            close = self._refs == 0
        if close:
            self.model.close()


class ModelHandle:
    """The one pointer every serving tier routes model access through.

    The hot path costs a single attribute read (:attr:`model`);
    :meth:`swap` warms the incoming model off the serving thread, flips
    the pointer atomically between micro-batches, and retires the old
    generation — its bank closes when the last in-flight batch lease
    releases. A handle opened against a :class:`ModelRegistry` can swap
    by bare version name.

    :meth:`open` is also the **unified loading entry point**: it
    accepts an artifact path, a registry version name (with
    ``registry=``), or an already-compiled model, replacing the three
    historical spellings (``core.io.load_model`` + ``CompiledModel(…)``,
    ``CompiledModel.load``, ``CompiledModel.from_shared_bank`` — see
    ``docs/api.md`` § Deprecated loading paths).
    """

    def __init__(
        self,
        model: CompiledModel,
        *,
        version: str | None = None,
        registry: ModelRegistry | None = None,
        runtime: dict | None = None,
    ) -> None:
        self.registry = registry
        #: Runtime kwargs (n_jobs, kernel_backend, dtype, …) reused when
        #: a swap target is resolved by path/version.
        self.runtime = dict(runtime or {})
        self._swap_lock = threading.Lock()
        self._lease = _ModelLease(model, version, generation=1)

    # -- construction ----------------------------------------------------------

    @classmethod
    def open(
        cls,
        target,
        *,
        registry: ModelRegistry | str | Path | None = None,
        version: str | None = None,
        **runtime,
    ) -> "ModelHandle":
        """Open a model from a path, a registry version, or an instance.

        * ``ModelHandle.open("model.npz")`` — artifact path;
        * ``ModelHandle.open("v3", registry=reg)`` — registry version
          (also the ``current``/``latest`` aliases), integrity-checked;
        * ``ModelHandle.open(compiled_model)`` — adopt as-is.

        ``runtime`` kwargs (``n_jobs``, ``kernel_backend``,
        ``dtype="float32"``, …) reach the compiled model and are reused
        by later :meth:`swap` resolutions.
        """
        if isinstance(registry, (str, Path)):
            registry = ModelRegistry(registry)
        handle = cls.__new__(cls)
        handle.registry = registry
        handle.runtime = dict(runtime)
        handle._swap_lock = threading.Lock()
        model, resolved = handle._resolve(target, version_hint=version)
        handle._lease = _ModelLease(model, resolved, generation=1)
        return handle

    def _resolve(
        self, target, *, version_hint: str | None = None
    ) -> tuple[CompiledModel, str | None]:
        """Compile ``target`` (path / version / model) with the handle's
        runtime kwargs; returns ``(model, version-or-None)``."""
        if isinstance(target, CompiledModel):
            return target, version_hint
        if isinstance(target, Path) or (
            isinstance(target, str) and (os.sep in target or target.endswith(".npz"))
        ):
            path = Path(target)
            return CompiledModel.load(path, **self.runtime), version_hint or path.stem
        if isinstance(target, str):
            if self.registry is None:
                raise RegistryError(
                    f"cannot resolve model version {target!r} without a "
                    f"registry (pass registry= or an artifact path)"
                )
            mv = self.registry.verify(target)
            return (
                CompiledModel.load(mv.path, **self.runtime),
                version_hint or mv.version,
            )
        raise TypeError(
            f"cannot open a model from {type(target).__name__}; expected a "
            f"CompiledModel, an artifact path, or a registry version name"
        )

    # -- hot path --------------------------------------------------------------

    @property
    def model(self) -> CompiledModel:
        """The live compiled model (one pointer read — the hot path)."""
        return self._lease.model

    @property
    def version(self) -> str | None:
        return self._lease.version

    @property
    def generation(self) -> int:
        return self._lease.generation

    def acquire(self) -> _ModelLease:
        """Lease the current generation for one batch.

        The tiny race (another thread swapping between the pointer read
        and the refcount bump) is benign: retire only *marks* the old
        lease, and the acquire that slipped in keeps the model open
        until its release — requests in that window are simply served
        by the outgoing generation, which swap semantics allow.
        """
        return self._lease.acquire()

    # -- swap ------------------------------------------------------------------

    def swap(self, target, *, warm: bool = True, version: str | None = None) -> str:
        """Warm the incoming model, flip the pointer, retire the old.

        Returns the installed version name. Concurrent swaps serialize;
        readers never block — they see the old pointer until the single
        assignment below, and in-flight leases keep the old bank alive
        until their batches complete.
        """
        with self._swap_lock:
            model, resolved = self._resolve(target, version_hint=version)
            if model is self._lease.model:
                return self._lease.version or ""
            if warm:
                model.warmup()
            old = self._lease
            self._lease = _ModelLease(model, resolved, old.generation + 1)
            old.retire()
        _log.info(
            "model handle swapped",
            extra={"version": resolved, "generation": self._lease.generation},
        )
        return resolved or ""

    def close(self) -> None:
        """Retire the current generation (idempotent)."""
        self._lease.retire()

    def __enter__(self) -> "ModelHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def describe(self) -> dict:
        """JSON-safe handle state (served on the admin ``/model`` route)."""
        return {
            "version": self.version,
            "generation": self.generation,
            "model": self.model.describe(),
            "registry": None if self.registry is None else str(self.registry.root),
        }


# ---------------------------------------------------------------------------
# Shadow scoring + promotion gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShadowReport:
    """Aggregate outcome of one shadow-scoring run."""

    candidate_version: str | None
    n_scored: int
    n_disagreements: int
    disagreement_rate: float
    #: Mean per-request latency of the primary path while shadowing.
    primary_mean_latency_ms: float
    #: Mean per-request latency of the candidate (its own thread).
    candidate_mean_latency_ms: float
    #: Fractional latency regression (candidate / primary − 1; 0 when
    #: the primary mean is unknown).
    latency_regression: float
    #: Shadow submissions dropped because the backlog was full — the
    #: price of staying off the latency path.
    n_dropped: int = 0

    def as_record(self) -> dict:
        return asdict(self)

    @classmethod
    def from_record(cls, record: dict) -> "ShadowReport":
        return cls(**{f: record[f] for f in cls.__dataclass_fields__})


@dataclass(frozen=True)
class GateDecision:
    allowed: bool
    reasons: list


@dataclass(frozen=True)
class PromotionGate:
    """Accuracy/latency thresholds a candidate must clear to promote."""

    #: Largest tolerated shadow disagreement rate (fraction of scored
    #: requests whose candidate label differed from the primary's).
    max_disagreement: float = 0.01
    #: Largest tolerated fractional latency regression (0.25 = the
    #: candidate may be at most 25% slower per request).
    max_latency_regression: float = 0.25
    #: Minimum scored requests for the report to mean anything.
    min_requests: int = 1

    def evaluate(self, report: ShadowReport) -> GateDecision:
        reasons = []
        if report.n_scored < self.min_requests:
            reasons.append(
                f"only {report.n_scored} shadow-scored requests "
                f"(gate requires >= {self.min_requests})"
            )
        if report.disagreement_rate > self.max_disagreement:
            reasons.append(
                f"disagreement rate {report.disagreement_rate:.4f} exceeds "
                f"max_disagreement {self.max_disagreement:.4f}"
            )
        if report.latency_regression > self.max_latency_regression:
            reasons.append(
                f"latency regression {report.latency_regression:.2f} exceeds "
                f"max_latency_regression {self.max_latency_regression:.2f}"
            )
        return GateDecision(allowed=not reasons, reasons=reasons)


class ShadowScorer:
    """Score a traffic fraction on a candidate model, off the hot path.

    The serving tier calls :meth:`offer` *after* a request's future has
    resolved — an O(1) deterministic sample + bounded-deque append, so
    shadowing never sits on the request latency path. A dedicated
    thread drains the backlog in small batches through the candidate
    model and compares labels against what the primary served.

    Metrics (``serve.shadow.*``): ``requests`` (scored), ``disagreements``,
    ``dropped`` (backlog full), and the ``latency_seconds`` histogram of
    candidate per-request time. Disagreements additionally land in the
    tier's flight recorder with reason ``"shadow-disagree"``.
    """

    def __init__(
        self,
        candidate: CompiledModel,
        *,
        version: str | None = None,
        fraction: float = 0.1,
        max_backlog: int = 512,
        batch: int = 32,
        metrics: MetricsRegistry | None = None,
        flight: FlightRecorder | None = None,
    ) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if max_backlog < 1:
            raise ValueError(f"max_backlog must be >= 1, got {max_backlog}")
        self.candidate = candidate
        self.version = version
        self.fraction = float(fraction)
        #: Deterministic sampling: every k-th OK request is mirrored.
        self._every = max(1, round(1.0 / fraction))
        self.metrics = metrics if metrics is not None else global_registry()
        self.flight = flight
        self._batch = int(batch)
        self._backlog: deque = deque(maxlen=max_backlog)
        self._seen = 0
        self._dropped = 0
        self._scored = 0
        self._disagreed = 0
        self._primary_latency_sum_ms = 0.0
        self._candidate_latency_sum_ms = 0.0
        self._lock = threading.Lock()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ShadowScorer":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="rpm-shadow-scorer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, drain: bool = True) -> None:
        """Stop the scoring thread (draining the backlog by default)."""
        if self._thread is None:
            return
        if drain:
            deadline = time.monotonic() + 10.0
            while self._backlog and time.monotonic() < deadline:
                self._wake.set()
                time.sleep(0.005)
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "ShadowScorer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- ingress (called by the serving tier, post-resolve) --------------------

    def offer(self, request_id: str, series, primary_label, latency_ms: float) -> None:
        """Maybe mirror one already-answered OK request (O(1), lossy)."""
        with self._lock:
            self._seen += 1
            if (self._seen - 1) % self._every:
                return
            if len(self._backlog) == self._backlog.maxlen:
                self._dropped += 1
                self.metrics.inc("serve.shadow.dropped")
                return
            self._backlog.append((request_id, series, primary_label, latency_ms))
        self._wake.set()

    # -- scoring thread --------------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            batch = self._take()
            if not batch:
                self._wake.wait(0.01)
                self._wake.clear()
                continue
            self._score(batch)
        # Final sweep so a stop() right after offer() loses nothing.
        batch = self._take()
        if batch:
            self._score(batch)

    def _take(self) -> list:
        with self._lock:
            take = min(len(self._backlog), self._batch)
            return [self._backlog.popleft() for _ in range(take)]

    def _score(self, batch: list) -> None:
        X = np.stack([series for _, series, _, _ in batch])
        t0 = time.monotonic()
        try:
            labels = self.candidate.predict(X)
        except Exception as exc:  # candidate failures must not leak upward
            self.metrics.inc("serve.shadow.errors", len(batch))
            _log.warning(
                "shadow candidate failed",
                extra={"error": f"{type(exc).__name__}: {exc}"},
            )
            return
        per_request_s = (time.monotonic() - t0) / len(batch)
        with self._lock:
            for (request_id, _series, primary_label, latency_ms), label in zip(
                batch, labels
            ):
                self._scored += 1
                self._primary_latency_sum_ms += latency_ms
                self._candidate_latency_sum_ms += per_request_s * 1000.0
                self.metrics.inc("serve.shadow.requests")
                self.metrics.observe("serve.shadow.latency_seconds", per_request_s)
                if label != primary_label:
                    self._disagreed += 1
                    self.metrics.inc("serve.shadow.disagreements")
                    if self.flight is not None:
                        self.flight.record(
                            FlightRecord(
                                request_id=request_id,
                                status="ok",
                                reason="shadow-disagree",
                                latency_ms=latency_ms,
                                error_message=(
                                    f"candidate {self.version or '?'} predicted "
                                    f"{label!r}, primary served {primary_label!r}"
                                ),
                            )
                        )

    # -- reporting -------------------------------------------------------------

    def report(self) -> ShadowReport:
        """Aggregate disagreement + latency deltas so far."""
        with self._lock:
            scored = self._scored
            disagreed = self._disagreed
            primary_mean = self._primary_latency_sum_ms / scored if scored else 0.0
            candidate_mean = (
                self._candidate_latency_sum_ms / scored if scored else 0.0
            )
            dropped = self._dropped
        regression = (
            candidate_mean / primary_mean - 1.0 if primary_mean > 0.0 else 0.0
        )
        return ShadowReport(
            candidate_version=self.version,
            n_scored=scored,
            n_disagreements=disagreed,
            disagreement_rate=disagreed / scored if scored else 0.0,
            primary_mean_latency_ms=primary_mean,
            candidate_mean_latency_ms=candidate_mean,
            latency_regression=regression,
            n_dropped=dropped,
        )
