"""Request/response types and input validation for the serving layer.

The serving contract is *typed results, not exceptions*: a malformed
series, a missed deadline or a mid-batch failure each produce a
:class:`PredictionResult` carrying a :class:`ResultStatus` and an error
code/message, so one bad request can never poison the rest of its
micro-batch or tear down the worker loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "ResultStatus",
    "PredictionRequest",
    "PredictionResult",
    "validate_series",
]


class ResultStatus(str, enum.Enum):
    """Terminal state of one prediction request."""

    OK = "ok"
    #: Input rejected before it reached the model (see error_code).
    INVALID = "invalid"
    #: Deadline expired before the model ran — graceful degradation,
    #: the caller gets a typed miss instead of a hung future.
    TIMEOUT = "timeout"
    #: The model itself failed mid-batch; the message carries the
    #: exception type and text.
    ERROR = "error"
    #: Admission control rejected the request at submit time: the
    #: estimated queue wait (queue depth × per-request latency) exceeded
    #: the latency budget, or a shard queue hit its hard cap. The
    #: request never occupies a queue slot — load is shed with a typed
    #: result instead of unbounded queueing.
    OVERLOAD = "overload"


@dataclass
class PredictionRequest:
    """One enqueued series plus its bookkeeping.

    ``request_id`` is the correlation token (``"req-N"``) stamped onto
    spans, flight-recorder entries and structured log lines, and
    returned in the result. ``deadline`` is an absolute
    ``time.monotonic()`` instant (``None`` = no deadline);
    ``enqueued_at`` feeds the queue-wait and latency histograms.
    """

    series: np.ndarray
    request_id: str
    deadline: float | None = None
    enqueued_at: float = 0.0


@dataclass
class PredictionResult:
    """Typed outcome of one request.

    ``label`` is only meaningful when ``status`` is ``OK``;
    ``error_code`` / ``error_message`` are only set for ``INVALID`` and
    ``ERROR`` results. ``deadline_missed`` marks OK results that were
    delivered after their deadline (computed, but late). ``request_id``
    is the caller's correlation token — quote it to
    ``GET /debug/requests?id=…`` on the admin endpoint to retrieve the
    flight-recorder entry of a slow or failed request. ``batch_id``
    names the micro-batch that carried the request (``None`` for
    requests rejected before batching).
    """

    request_id: str
    status: ResultStatus
    label: object = None
    error_code: str | None = None
    error_message: str | None = None
    deadline_missed: bool = False
    latency_ms: float = 0.0
    batch_id: int | None = None
    #: Which shard of a sharded tier answered (``None`` single-process,
    #: or for requests rejected before routing).
    shard: int | None = None
    #: Version of the model that produced (or rejected) this result —
    #: during a hot-swap, results computed by the outgoing model carry
    #: the outgoing version, so callers can always attribute a
    #: prediction to the exact artifact that made it.
    model_version: str | None = None
    features: np.ndarray | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status is ResultStatus.OK


def validate_series(series, expected_length: int | None = None):
    """Validate one raw input series for serving.

    Returns ``(array, None, None)`` on success or
    ``(None, error_code, error_message)`` on rejection. Codes:

    * ``bad-dtype`` — not convertible to a float array;
    * ``bad-shape`` — not 1-D;
    * ``bad-length`` — fewer than 2 points, or (when the model records
      its training length) a length mismatch;
    * ``non-finite`` — NaN or infinity anywhere in the series.
    """
    try:
        values = np.asarray(series, dtype=float)
    except (TypeError, ValueError) as exc:
        return None, "bad-dtype", f"series is not numeric: {exc}"
    if values.ndim != 1:
        return None, "bad-shape", f"series must be 1-D, got shape {values.shape}"
    if values.size < 2:
        return None, "bad-length", f"series needs >= 2 points, got {values.size}"
    if expected_length is not None and values.size != expected_length:
        return (
            None,
            "bad-length",
            f"series has {values.size} points, model expects {expected_length}",
        )
    if not np.isfinite(values).all():
        bad = int(np.count_nonzero(~np.isfinite(values)))
        return None, "non-finite", f"series contains {bad} non-finite values"
    return values, None, None
