"""repro.serve — batched inference over fitted RPM models.

The paper's headline is *efficient classification*: once the
representative patterns are mined, labelling a series is one
closest-match transform plus an SVM call. This package is the serving
path for that claim:

* :class:`CompiledModel` — a :mod:`repro.core.io` artifact loaded once,
  its pattern bank pre-z-normalized and length-bucketed so every
  request batch builds sliding-window statistics once per length;
* :class:`PredictionService` — micro-batching (``max_batch`` /
  ``max_delay_ms``), per-request deadlines with typed timeout results,
  strict input validation and warm-up, all instrumented through
  :mod:`repro.obs`;
* :class:`AdminServer` — embedded HTTP ops surface (``/healthz``,
  ``/readyz``, Prometheus ``/metrics``, ``/debug/requests``) over a
  running service (``PredictionService(admin_port=…)`` or standalone);
* :class:`FlightRecorder` — bounded ring of recent slow/error/timeout
  requests, correlated by the ``req-N`` ID every result carries;
* :class:`ShardedPredictionService` — the same typed contract scaled
  across N worker processes sharing one
  :class:`SharedPatternBank` shared-memory pattern bank, with
  admission control (typed ``OVERLOAD`` results under saturation) and
  zero-loss worker recycle/respawn (see ``repro.serve.shard``).

Typical use::

    from repro.serve import CompiledModel, PredictionService

    model = CompiledModel.load("model.npz", n_jobs=4)
    with PredictionService(model, max_batch=64, max_delay_ms=2.0) as svc:
        result = svc.predict_one(series, deadline_ms=50.0)
        labels = svc.predict(X_batch)   # == RPMClassifier.predict, bitwise

See ``docs/serving.md`` for the full lifecycle and knob catalogue.
"""

from .admin import AdminServer
from .compiled import CompiledModel
from .flight import FlightRecord, FlightRecorder
from .service import PredictionService
from .shard import SharedPatternBank, ShardedPredictionService
from .types import PredictionRequest, PredictionResult, ResultStatus, validate_series

__all__ = [
    "AdminServer",
    "CompiledModel",
    "FlightRecord",
    "FlightRecorder",
    "PredictionService",
    "PredictionRequest",
    "PredictionResult",
    "ResultStatus",
    "SharedPatternBank",
    "ShardedPredictionService",
    "validate_series",
]
