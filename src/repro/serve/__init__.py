"""repro.serve — batched inference over fitted RPM models.

The paper's headline is *efficient classification*: once the
representative patterns are mined, labelling a series is one
closest-match transform plus an SVM call. This package is the serving
path for that claim:

* :class:`CompiledModel` — a :mod:`repro.core.io` artifact loaded once,
  its pattern bank pre-z-normalized and length-bucketed so every
  request batch builds sliding-window statistics once per length;
* :class:`ServeConfig` — the one frozen dataclass carrying every
  serving knob for both tiers (validated in ``__post_init__``,
  ``from_args`` for the CLI);
* :class:`PredictionService` — micro-batching (``max_batch`` /
  ``max_delay_ms``), per-request deadlines with typed timeout results,
  strict input validation and warm-up, all instrumented through
  :mod:`repro.obs`;
* :class:`AdminServer` — embedded HTTP ops surface (``/healthz``,
  ``/readyz``, Prometheus ``/metrics``, ``/debug/requests``,
  ``/model``, ``POST /swap``) over a running service;
* :class:`FlightRecorder` — bounded ring of recent slow/error/timeout
  requests, correlated by the ``req-N`` ID every result carries;
* :class:`ShardedPredictionService` — the same typed contract scaled
  across N worker processes sharing one
  :class:`SharedPatternBank` shared-memory pattern bank, with
  admission control (typed ``OVERLOAD`` results under saturation) and
  zero-loss worker recycle/respawn (see ``repro.serve.shard``);
* the model lifecycle (:mod:`repro.serve.lifecycle`):
  :class:`ModelRegistry` (versioned artifacts with lineage metadata and
  integrity checks), :class:`ModelHandle` (the unified loading entry
  point and the atomic hot-swap pointer both tiers route through),
  :class:`ShadowScorer` + :class:`PromotionGate` (mirror a traffic
  fraction onto a candidate off the latency path; gate promotion on
  disagreement rate and latency regression).

Typical use::

    from repro.serve import ModelHandle, PredictionService, ServeConfig

    handle = ModelHandle.open("current", registry="models/", n_jobs=4)
    config = ServeConfig(max_batch=64, max_delay_ms=2.0)
    with PredictionService(handle, config=config) as svc:
        result = svc.predict_one(series, deadline_ms=50.0)
        labels = svc.predict(X_batch)   # == RPMClassifier.predict, bitwise
        svc.swap("v7")                  # hot-swap, zero dropped requests

See ``docs/serving.md`` for the serving tiers and ``docs/lifecycle.md``
for the registry / hot-swap / shadow-scoring subsystem.
"""

from .admin import AdminServer
from .compiled import CompiledModel
from .config import ServeConfig
from .flight import FlightRecord, FlightRecorder
from .lifecycle import (
    GateDecision,
    ModelHandle,
    ModelRegistry,
    ModelVersion,
    PromotionGate,
    RegistryError,
    RegistryIntegrityError,
    ShadowReport,
    ShadowScorer,
)
from .monitor import (
    DriftMonitor,
    build_reference,
    offline_drift_report,
    resolve_reference,
)
from .service import PredictionService
from .shard import SharedPatternBank, ShardedPredictionService
from .types import PredictionRequest, PredictionResult, ResultStatus, validate_series

__all__ = [
    "AdminServer",
    "CompiledModel",
    "DriftMonitor",
    "FlightRecord",
    "FlightRecorder",
    "GateDecision",
    "ModelHandle",
    "ModelRegistry",
    "ModelVersion",
    "PredictionService",
    "PredictionRequest",
    "PredictionResult",
    "PromotionGate",
    "RegistryError",
    "RegistryIntegrityError",
    "ResultStatus",
    "ServeConfig",
    "ShadowReport",
    "ShadowScorer",
    "SharedPatternBank",
    "ShardedPredictionService",
    "validate_series",
]
