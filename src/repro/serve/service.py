"""Micro-batching prediction service over a :class:`CompiledModel`.

The serving loop is the classic latency/throughput trade: requests
arriving within a short window are coalesced into one batch, so the
per-batch costs — sliding-window statistics, one mat-vec per pattern,
one SVM call — amortize over every request in it.

One background worker thread drains the queue: the first request opens
a batch window, further requests join until ``max_batch`` is reached or
``max_delay_ms`` elapses, then the whole batch runs through the
compiled transform. Each request resolves to a typed
:class:`~repro.serve.types.PredictionResult`:

* validation failures resolve immediately at submit time (they never
  occupy queue or batch slots);
* requests whose deadline expired while queued are answered with a
  ``TIMEOUT`` result instead of being computed — graceful degradation
  under overload;
* a model failure mid-batch resolves every member with an ``ERROR``
  result; the worker loop never dies.

Batching is invisible in the outputs: the per-row transform is
row-independent and bitwise reproducible (pinned by the parity and
serve test suites), so predictions do not depend on which batch a
request landed in.

Observability: every batch is a ``serve.batch`` span; the metrics
registry carries ``serve.requests`` / ``serve.batches`` /
``serve.invalid`` / ``serve.deadline_misses`` / ``serve.errors``
counters, the ``serve.batch_size`` and ``serve.queue_wait_seconds``
histograms and the ``serve.queue_depth`` gauge (see
``docs/observability.md``).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future

import numpy as np

from ..obs import resolve_tracer
from ..obs.metrics import MetricsRegistry, registry
from .compiled import CompiledModel
from .types import PredictionRequest, PredictionResult, ResultStatus, validate_series

__all__ = ["PredictionService"]

_STOP = object()


class PredictionService:
    """Batched, deadline-aware serving front-end.

    Parameters
    ----------
    model:
        The compiled model to serve.
    max_batch:
        Largest number of requests coalesced into one model call.
    max_delay_ms:
        Longest a batch window stays open waiting for more requests.
        ``0`` disables coalescing (every request is its own batch).
    default_deadline_ms:
        Deadline applied to requests that do not bring their own;
        ``None`` means no deadline.
    validate:
        Strict input validation at submit time (length/NaN/dtype).
        Leave on unless the caller guarantees clean input.
    warmup:
        Run :meth:`CompiledModel.warmup` on :meth:`start`.
    trace / metrics:
        Observability wiring; defaults to the no-op tracer and the
        process-wide registry.
    """

    def __init__(
        self,
        model: CompiledModel,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        default_deadline_ms: float | None = None,
        validate: bool = True,
        warmup: bool = True,
        trace=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {max_delay_ms}")
        self.model = model
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_ms) / 1000.0
        self.default_deadline_ms = default_deadline_ms
        self.validate = bool(validate)
        self._warmup = bool(warmup)
        self.tracer = resolve_tracer(trace)
        self.metrics = metrics if metrics is not None else registry()
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._thread: threading.Thread | None = None
        self._running = False
        self._next_id = 0
        self._id_lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "PredictionService":
        """Warm the model up and launch the batching worker."""
        if self._running:
            return self
        if self._warmup:
            self.model.warmup(n=min(4, self.max_batch))
        self._running = True
        self._thread = threading.Thread(
            target=self._worker, name="rpm-serve-batcher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Drain-and-stop: queued requests are still answered."""
        if not self._running:
            return
        self._running = False
        self._queue.put(_STOP)
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- submission ------------------------------------------------------------

    def _new_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    def submit(self, series, *, deadline_ms: float | None = None) -> Future:
        """Enqueue one series; returns a future of a PredictionResult.

        Invalid input resolves the future immediately with an
        ``INVALID`` result — nothing malformed ever reaches the model.
        """
        if not self._running:
            raise RuntimeError(
                "PredictionService is not running; use `with service:` or call start()"
            )
        request_id = self._new_id()
        future: Future = Future()
        self.metrics.inc("serve.requests")
        expected = self.model.series_length if self.validate else None
        if self.validate:
            values, code, message = validate_series(series, expected)
        else:
            values, code, message = np.asarray(series, dtype=float), None, None
        if code is not None:
            self.metrics.inc("serve.invalid")
            future.set_result(
                PredictionResult(
                    request_id=request_id,
                    status=ResultStatus.INVALID,
                    error_code=code,
                    error_message=message,
                )
            )
            return future
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        now = time.monotonic()
        request = PredictionRequest(
            series=values,
            request_id=request_id,
            deadline=None if deadline_ms is None else now + deadline_ms / 1000.0,
            enqueued_at=now,
        )
        self.metrics.add_gauge("serve.queue_depth", 1)
        self._queue.put((request, future))
        return future

    def predict_one(
        self, series, *, deadline_ms: float | None = None, wait_s: float | None = None
    ) -> PredictionResult:
        """Submit one series and block for its typed result."""
        return self.submit(series, deadline_ms=deadline_ms).result(timeout=wait_s)

    def predict_many(
        self, X, *, deadline_ms: float | None = None, wait_s: float | None = None
    ) -> list[PredictionResult]:
        """Submit every row of ``X`` and block for all results, in order."""
        futures = [self.submit(row, deadline_ms=deadline_ms) for row in np.asarray(X, dtype=float)]
        return [future.result(timeout=wait_s) for future in futures]

    def predict(self, X) -> np.ndarray:
        """Label array for a clean batch — the RPMClassifier.predict shape.

        Every row must come back ``OK``; a validation failure, timeout
        or model error raises instead of silently dropping rows. The
        returned labels are bitwise identical to
        ``RPMClassifier.predict(X)`` on the same fitted model.
        """
        results = self.predict_many(X)
        bad = [r for r in results if not r.ok]
        if bad:
            first = bad[0]
            raise RuntimeError(
                f"{len(bad)}/{len(results)} requests failed; first: "
                f"{first.status.value} ({first.error_code or first.error_message})"
            )
        return np.array([r.label for r in results])

    # -- worker loop -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            stopping = item is _STOP
            batch = [] if stopping else [item]
            if not stopping:
                window_closes = time.monotonic() + self.max_delay_s
                while len(batch) < self.max_batch:
                    remaining = window_closes - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        stopping = True
                        break
                    batch.append(nxt)
            if stopping:
                # Drain-and-answer whatever is still queued so no
                # submitted future ever dangles.
                batch.extend(self._drain())
            for lo in range(0, len(batch), self.max_batch):
                self._process(batch[lo : lo + self.max_batch])
            if stopping:
                return

    def _drain(self) -> list:
        batch = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return batch
            if item is not _STOP:
                batch.append(item)

    def _process(self, batch: list) -> None:
        now = time.monotonic()
        self.metrics.inc("serve.batches")
        self.metrics.observe("serve.batch_size", len(batch))
        self.metrics.add_gauge("serve.queue_depth", -len(batch))
        with self.tracer.span("serve.batch") as span:
            span.add("batch.size", len(batch))
            live: list[tuple[PredictionRequest, Future]] = []
            for request, future in batch:
                self.metrics.observe(
                    "serve.queue_wait_seconds", now - request.enqueued_at
                )
                if request.deadline is not None and now > request.deadline:
                    self.metrics.inc("serve.deadline_misses")
                    span.add("batch.deadline_misses")
                    future.set_result(
                        PredictionResult(
                            request_id=request.request_id,
                            status=ResultStatus.TIMEOUT,
                            deadline_missed=True,
                            latency_ms=(now - request.enqueued_at) * 1000.0,
                        )
                    )
                else:
                    live.append((request, future))
            if not live:
                return
            X = np.stack([request.series for request, _ in live])
            try:
                features = self.model.transform(X)
                labels = self.model.classifier.predict(features)
            except Exception as exc:  # typed results, never a dead worker
                self.metrics.inc("serve.errors", len(live))
                span.annotate(error=type(exc).__name__)
                for request, future in live:
                    future.set_result(
                        PredictionResult(
                            request_id=request.request_id,
                            status=ResultStatus.ERROR,
                            error_code="model-failure",
                            error_message=f"{type(exc).__name__}: {exc}",
                        )
                    )
                return
            done = time.monotonic()
            for i, (request, future) in enumerate(live):
                late = request.deadline is not None and done > request.deadline
                if late:
                    self.metrics.inc("serve.deadline_misses")
                    span.add("batch.deadline_misses")
                future.set_result(
                    PredictionResult(
                        request_id=request.request_id,
                        status=ResultStatus.OK,
                        label=labels[i],
                        deadline_missed=late,
                        latency_ms=(done - request.enqueued_at) * 1000.0,
                        features=features[i],
                    )
                )
