"""Micro-batching prediction service over a :class:`CompiledModel`.

The serving loop is the classic latency/throughput trade: requests
arriving within a short window are coalesced into one batch, so the
per-batch costs — sliding-window statistics, one mat-vec per pattern,
one SVM call — amortize over every request in it.

One background worker thread drains the queue: the first request opens
a batch window, further requests join until ``max_batch`` is reached or
``max_delay_ms`` elapses, then the whole batch runs through the
compiled transform. Each request resolves to a typed
:class:`~repro.serve.types.PredictionResult`:

* validation failures resolve immediately at submit time (they never
  occupy queue or batch slots);
* requests whose deadline expired while queued are answered with a
  ``TIMEOUT`` result instead of being computed — graceful degradation
  under overload;
* a model failure mid-batch resolves every member with an ``ERROR``
  result; the worker loop never dies.

Batching is invisible in the outputs: the per-row transform is
row-independent and bitwise reproducible (pinned by the parity and
serve test suites), so predictions do not depend on which batch a
request landed in.

Observability: every batch is a ``serve.batch`` span carrying its
``batch_id`` and the member request IDs; the metrics registry carries
``serve.requests`` / ``serve.batches`` / ``serve.invalid`` /
``serve.deadline_misses`` / ``serve.errors`` counters, the
``serve.batch_size`` / ``serve.queue_wait_seconds`` /
``serve.latency_seconds`` histograms and the ``serve.queue_depth``
gauge (see ``docs/observability.md``). Every request gets a ``req-N``
correlation ID returned in its result; slow, timed-out, invalid and
errored requests additionally land in a bounded
:class:`~repro.serve.flight.FlightRecorder` (with their ``serve.batch``
span subtree) and in structured log lines, and the whole surface is
queryable live through the embedded
:class:`~repro.serve.admin.AdminServer` (``admin_port=``).
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future

import numpy as np

from ..obs import resolve_tracer
from ..obs.emitters import span_subtree
from ..obs.metrics import MetricsRegistry, registry
from ..obs.tracer import Tracer
from .admin import AdminServer
from .compiled import CompiledModel
from .config import ServeConfig, apply_legacy_kwargs
from .flight import FlightRecord, FlightRecorder
from .lifecycle import ModelHandle, ShadowReport, ShadowScorer
from .monitor import DriftMonitor, resolve_reference
from .types import PredictionRequest, PredictionResult, ResultStatus, validate_series

__all__ = ["PredictionService"]

_STOP = object()

_log = logging.getLogger("repro.serve")


class PredictionService:
    """Batched, deadline-aware serving front-end.

    Parameters
    ----------
    model:
        The model to serve: a :class:`CompiledModel`, or a
        :class:`~repro.serve.lifecycle.ModelHandle` (pass a handle
        opened against a :class:`~repro.serve.lifecycle.ModelRegistry`
        to enable version-name hot-swap and the admin ``POST /swap``).
        A bare model is wrapped in a private handle.
    config:
        The one :class:`~repro.serve.config.ServeConfig` carrying every
        serving knob (batching window, deadlines, flight capture, admin
        endpoint, shadow fraction). The historical per-knob keywords
        (``max_batch=…``, ``slow_ms=…``, …) still work for one release
        and emit a :class:`DeprecationWarning`.
    trace / metrics:
        Observability wiring; defaults to the no-op tracer and the
        process-wide registry.
    """

    def __init__(
        self,
        model: CompiledModel | ModelHandle,
        *,
        config: ServeConfig | None = None,
        trace=None,
        metrics: MetricsRegistry | None = None,
        **legacy,
    ) -> None:
        config = apply_legacy_kwargs(config, legacy, owner="PredictionService")
        self.config = config
        self.handle = model if isinstance(model, ModelHandle) else ModelHandle(model)
        self.max_batch = config.max_batch
        self.max_delay_s = config.max_delay_ms / 1000.0
        self.default_deadline_ms = config.default_deadline_ms
        self.validate = config.validate
        self._warmup = config.warmup
        self.slow_ms = config.slow_ms
        self.flight = FlightRecorder(config.flight_capacity)
        self.admin: AdminServer | None = None
        self._admin_port = config.admin_port
        self._admin_host = config.admin_host
        self.shadow: ShadowScorer | None = None
        self._shadow_owns_candidate = False
        self.drift: DriftMonitor | None = None
        self.tracer = resolve_tracer(trace)
        self.metrics = metrics if metrics is not None else registry()
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._thread: threading.Thread | None = None
        self._running = False
        self._ready = False
        self._next_id = 0
        self._id_lock = threading.Lock()
        # Serializes the running-check-then-enqueue in submit() against
        # stop(): without it a racing submit can pass the check, lose
        # the CPU while stop() enqueues _STOP and the worker finishes
        # its final drain, and then land its put() on a queue nobody
        # will ever read — a forever-dangling future and a leaked +1 on
        # the serve.queue_depth gauge.
        self._submit_lock = threading.Lock()
        self._batches_done = 0

    # -- lifecycle -------------------------------------------------------------

    @property
    def model(self) -> CompiledModel:
        """The live compiled model (hot-swappable; see :meth:`swap`)."""
        return self.handle.model

    @property
    def model_version(self) -> str | None:
        """The live model's version name (``None`` when untracked)."""
        return self.handle.version

    @property
    def running(self) -> bool:
        """Liveness: the batching worker is accepting requests."""
        return self._running

    @property
    def ready(self) -> bool:
        """Readiness: running *and* the model warm-up has completed."""
        return self._running and self._ready

    def start(self) -> "PredictionService":
        """Warm the model up and launch the batching worker."""
        if self._running:
            return self
        if self._warmup:
            self.model.warmup(n=min(4, self.max_batch))
        self._publish_model_metrics()
        self._ready = True
        self._running = True
        self._thread = threading.Thread(
            target=self._worker, name="rpm-serve-batcher", daemon=True
        )
        self._thread.start()
        if self._admin_port is not None and self.admin is None:
            self.admin = AdminServer(
                self, host=self._admin_host, port=self._admin_port
            ).start()
        _log.info(
            "prediction service started",
            extra={
                "model": self.model.describe(),
                "max_batch": self.max_batch,
                "admin_url": self.admin.url() if self.admin else None,
            },
        )
        return self

    def stop(self) -> None:
        """Drain-and-stop: queued requests are still answered."""
        with self._submit_lock:
            if not self._running:
                return
            self._running = False
            self._ready = False
            self._queue.put(_STOP)
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        # Belt and braces against future enqueue paths: anything that
        # slipped in behind _STOP (impossible via submit(), which holds
        # the lock) still gets a typed answer instead of dangling.
        for request, future in self._drain():
            self.metrics.add_gauge("serve.queue_depth", -1)
            future.set_result(
                PredictionResult(
                    request_id=request.request_id,
                    status=ResultStatus.ERROR,
                    error_code="service-stopped",
                    error_message="service stopped before the request was batched",
                    model_version=self.handle.version,
                )
            )
        if self.admin is not None:
            self.admin.stop()
            self.admin = None
        self.detach_shadow()
        self.detach_drift()
        _log.info(
            "prediction service stopped",
            extra={
                "requests": self.metrics.counter_value("serve.requests"),
                "batches": self.metrics.counter_value("serve.batches"),
            },
        )

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- model lifecycle -------------------------------------------------------

    def _publish_model_metrics(self) -> None:
        """``serve.model_version`` gauge = handle generation (monotonic,
        so "the gauge moved" is the swap-happened signal), plus a
        labeled variant naming the version for the Prometheus export."""
        self.metrics.set_gauge("serve.model_version", float(self.handle.generation))
        if self.handle.version:
            self.metrics.set_gauge(
                f"serve.model_version[version={self.handle.version}]",
                float(self.handle.generation),
            )

    def swap(self, target, *, version: str | None = None, warm: bool = True) -> str:
        """Hot-swap the served model without dropping a request.

        ``target`` is anything :meth:`ModelHandle.open` accepts — an
        artifact path, a registry version name (when the handle carries
        a registry), or a prebuilt :class:`CompiledModel`. The incoming
        model is warmed first, the handle pointer flips between
        micro-batches, and the outgoing model closes once its last
        in-flight batch lease releases. Returns the installed version.
        """
        resolved = self.handle.swap(target, version=version, warm=warm)
        self.metrics.inc("serve.swaps")
        self._publish_model_metrics()
        _log.info(
            "model hot-swapped",
            extra={
                "version": resolved,
                "generation": self.handle.generation,
                "model": self.model.describe(),
            },
        )
        return resolved

    def describe_model(self) -> dict:
        """JSON-safe live-model state (the admin ``GET /model`` body)."""
        info = self.handle.describe()
        shadow = self.shadow
        if shadow is not None:
            info["shadow"] = shadow.report().as_record()
        return info

    def attach_shadow(
        self,
        candidate,
        *,
        version: str | None = None,
        fraction: float | None = None,
        max_backlog: int = 512,
    ) -> ShadowScorer:
        """Mirror a fraction of OK traffic onto ``candidate``.

        ``candidate`` resolves like a swap target. Scoring runs on the
        shadow thread — requests are answered before they are offered,
        so the latency path is untouched (pinned by the shadow section
        of ``bench_serve_load.py``). Read :meth:`shadow_report` and feed
        it to a :class:`~repro.serve.lifecycle.PromotionGate`.
        """
        if self.shadow is not None:
            raise RuntimeError(
                "a shadow candidate is already attached; detach_shadow() first"
            )
        owns = not isinstance(candidate, CompiledModel)
        model, resolved = self.handle._resolve(candidate, version_hint=version)
        scorer = ShadowScorer(
            model,
            version=resolved,
            fraction=self.config.shadow_fraction if fraction is None else fraction,
            max_backlog=max_backlog,
            metrics=self.metrics,
            flight=self.flight,
        )
        self._shadow_owns_candidate = owns
        self.shadow = scorer.start()
        _log.info(
            "shadow candidate attached",
            extra={"version": resolved, "fraction": scorer.fraction},
        )
        return scorer

    def detach_shadow(self) -> ShadowReport | None:
        """Stop shadow scoring; returns the final report (idempotent)."""
        scorer, self.shadow = self.shadow, None
        if scorer is None:
            return None
        scorer.stop()
        report = scorer.report()
        if self._shadow_owns_candidate:
            scorer.candidate.close()
        self._shadow_owns_candidate = False
        return report

    def shadow_report(self) -> ShadowReport | None:
        """The live shadow run's aggregate so far (``None`` when off)."""
        return None if self.shadow is None else self.shadow.report()

    # -- drift monitoring ------------------------------------------------------

    def attach_drift(
        self,
        reference=None,
        *,
        window: int | None = None,
        threshold: float | None = None,
        max_backlog: int = 4096,
    ) -> DriftMonitor:
        """Compare live traffic against a training reference, off-path.

        ``reference`` resolves like
        :func:`~repro.serve.monitor.resolve_reference`: an explicit
        :class:`~repro.obs.sketch.ReferenceDistribution`, a
        ``reference.json`` / ``.npz`` path, or ``None`` to use the
        served registry version's published reference. Folding and PSI
        evaluation run on the monitor's own thread after futures
        resolve, so predictions stay bitwise identical with the monitor
        on or off (pinned by the drift suite and ``bench_drift.py``).
        """
        if self.drift is not None:
            raise RuntimeError(
                "a drift monitor is already attached; detach_drift() first"
            )
        ref = resolve_reference(
            reference, self.handle, n_columns=self.model.n_patterns
        )
        monitor = DriftMonitor(
            ref,
            window=self.config.drift_window if window is None else window,
            threshold=(
                self.config.drift_threshold if threshold is None else threshold
            ),
            max_backlog=max_backlog,
            metrics=self.metrics,
            flight=self.flight,
        )
        self.drift = monitor.start()
        _log.info(
            "drift monitor attached",
            extra={
                "window": monitor.window,
                "threshold": monitor.threshold,
                "reference": ref.meta(),
            },
        )
        return monitor

    def detach_drift(self) -> dict | None:
        """Stop drift monitoring; returns the final evaluation payload
        (``None`` when no monitor was attached or nothing was folded)."""
        monitor, self.drift = self.drift, None
        if monitor is None:
            return None
        monitor.stop()
        return monitor.flush()

    def describe_drift(self) -> dict | None:
        """The live monitor's state (the admin ``GET /drift`` body);
        ``None`` when drift monitoring is off."""
        return None if self.drift is None else self.drift.describe()

    # -- submission ------------------------------------------------------------

    def _new_id(self) -> str:
        with self._id_lock:
            self._next_id += 1
            return f"req-{self._next_id}"

    def submit(self, series, *, deadline_ms: float | None = None) -> Future:
        """Enqueue one series; returns a future of a PredictionResult.

        Invalid input resolves the future immediately with an
        ``INVALID`` result — nothing malformed ever reaches the model.
        The result's ``request_id`` is the correlation token for spans,
        logs and the flight recorder.
        """
        if not self._running:
            raise RuntimeError(
                "PredictionService is not running; use `with service:` or call start()"
            )
        request_id = self._new_id()
        future: Future = Future()
        self.metrics.inc("serve.requests")
        expected = self.model.series_length if self.validate else None
        if self.validate:
            values, code, message = validate_series(series, expected)
        else:
            values, code, message = np.asarray(series, dtype=float), None, None
        if code is not None:
            self.metrics.inc("serve.invalid")
            self.flight.record(
                FlightRecord(
                    request_id=request_id,
                    status=ResultStatus.INVALID.value,
                    reason="invalid",
                    error_code=code,
                    error_message=message,
                )
            )
            _log.warning(
                "request rejected at validation",
                extra={"request_id": request_id, "error_code": code},
            )
            future.set_result(
                PredictionResult(
                    request_id=request_id,
                    status=ResultStatus.INVALID,
                    error_code=code,
                    error_message=message,
                    model_version=self.handle.version,
                )
            )
            return future
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        now = time.monotonic()
        request = PredictionRequest(
            series=values,
            request_id=request_id,
            deadline=None if deadline_ms is None else now + deadline_ms / 1000.0,
            enqueued_at=now,
        )
        # Re-check liveness and enqueue atomically against stop():
        # either this put lands before _STOP (the worker's final drain
        # answers it) or the service is already stopped and the caller
        # gets the RuntimeError — never a dangling future.
        with self._submit_lock:
            if not self._running:
                raise RuntimeError(
                    "PredictionService is not running; use `with service:` "
                    "or call start()"
                )
            self.metrics.add_gauge("serve.queue_depth", 1)
            self._queue.put((request, future))
        return future

    def predict_one(
        self, series, *, deadline_ms: float | None = None, wait_s: float | None = None
    ) -> PredictionResult:
        """Submit one series and block for its typed result."""
        return self.submit(series, deadline_ms=deadline_ms).result(timeout=wait_s)

    def predict_many(
        self, X, *, deadline_ms: float | None = None, wait_s: float | None = None
    ) -> list[PredictionResult]:
        """Submit every row of ``X`` and block for all results, in order.

        Rows are submitted as-is — never forced through one rectangular
        array — so a ragged batch (wrong-length or non-numeric rows
        mixed with good ones) yields per-row typed ``INVALID`` results
        instead of an untyped ``ValueError`` before validation runs.
        """
        futures = [self.submit(row, deadline_ms=deadline_ms) for row in X]
        return [future.result(timeout=wait_s) for future in futures]

    def predict(self, X) -> np.ndarray:
        """Label array for a clean batch — the RPMClassifier.predict shape.

        Every row must come back ``OK``; a validation failure, timeout
        or model error raises instead of silently dropping rows. The
        returned labels are bitwise identical to
        ``RPMClassifier.predict(X)`` on the same fitted model.
        """
        results = self.predict_many(X)
        bad = [r for r in results if not r.ok]
        if bad:
            first = bad[0]
            raise RuntimeError(
                f"{len(bad)}/{len(results)} requests failed; first: "
                f"{first.status.value} ({first.error_code or first.error_message})"
            )
        return np.array([r.label for r in results])

    # -- worker loop -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            stopping = item is _STOP
            batch = [] if stopping else [item]
            if not stopping:
                window_closes = time.monotonic() + self.max_delay_s
                while len(batch) < self.max_batch:
                    remaining = window_closes - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        nxt = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                    if nxt is _STOP:
                        stopping = True
                        break
                    batch.append(nxt)
            if stopping:
                # Drain-and-answer whatever is still queued so no
                # submitted future ever dangles.
                batch.extend(self._drain())
            for lo in range(0, len(batch), self.max_batch):
                self._process(batch[lo : lo + self.max_batch])
            if stopping:
                return

    def _drain(self) -> list:
        batch = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return batch
            if item is not _STOP:
                batch.append(item)

    def _process(self, batch: list) -> None:
        now = time.monotonic()
        self._batches_done += 1
        batch_id = self._batches_done
        self.metrics.inc("serve.batches")
        self.metrics.observe("serve.batch_size", len(batch))
        self.metrics.add_gauge("serve.queue_depth", -len(batch))
        # The whole micro-batch runs under one model lease: a concurrent
        # swap() flips the handle pointer for the *next* batch, while
        # this lease keeps the outgoing model open until release — the
        # atomic-swap contract (no request computed by a half-closed
        # model, every result stamped with the version that made it).
        lease = self.handle.acquire()
        model = lease.model
        version = lease.version
        # The serve.batch span goes to the configured tracer; with
        # tracing off but the flight recorder on, a throwaway local
        # Tracer records it instead, so captured entries always carry
        # their span subtree without accumulating unbounded span state
        # in a long-running service.
        capture = self.flight.enabled
        tracer = self.tracer if self.tracer.enabled else (Tracer() if capture else self.tracer)
        outcomes: list[tuple[PredictionRequest, PredictionResult]] = []
        try:
            with tracer.span("serve.batch") as span:
                span.annotate(
                    batch_id=batch_id,
                    request_ids=[request.request_id for request, _ in batch],
                    model_version=version,
                )
                span.add("batch.size", len(batch))
                live: list[tuple[PredictionRequest, Future]] = []
                for request, future in batch:
                    self.metrics.observe(
                        "serve.queue_wait_seconds", now - request.enqueued_at
                    )
                    if request.deadline is not None and now > request.deadline:
                        self.metrics.inc("serve.deadline_misses")
                        span.add("batch.deadline_misses")
                        result = PredictionResult(
                            request_id=request.request_id,
                            status=ResultStatus.TIMEOUT,
                            deadline_missed=True,
                            latency_ms=(now - request.enqueued_at) * 1000.0,
                            batch_id=batch_id,
                            model_version=version,
                        )
                        self._finish(request, future, result, outcomes)
                    else:
                        live.append((request, future))
                if live:
                    X = np.stack([request.series for request, _ in live])
                    try:
                        features = model.transform(X)
                        labels = model.classifier.predict(features)
                    except Exception as exc:  # typed results, never a dead worker
                        self.metrics.inc("serve.errors", len(live))
                        span.annotate(error=type(exc).__name__)
                        for request, future in live:
                            result = PredictionResult(
                                request_id=request.request_id,
                                status=ResultStatus.ERROR,
                                error_code="model-failure",
                                error_message=f"{type(exc).__name__}: {exc}",
                                latency_ms=(time.monotonic() - request.enqueued_at)
                                * 1000.0,
                                batch_id=batch_id,
                                model_version=version,
                            )
                            self._finish(request, future, result, outcomes)
                    else:
                        done = time.monotonic()
                        for i, (request, future) in enumerate(live):
                            late = (
                                request.deadline is not None
                                and done > request.deadline
                            )
                            if late:
                                self.metrics.inc("serve.deadline_misses")
                                span.add("batch.deadline_misses")
                            result = PredictionResult(
                                request_id=request.request_id,
                                status=ResultStatus.OK,
                                label=labels[i],
                                deadline_missed=late,
                                latency_ms=(done - request.enqueued_at) * 1000.0,
                                batch_id=batch_id,
                                model_version=version,
                                features=features[i],
                            )
                            self._finish(request, future, result, outcomes)
        finally:
            lease.release()
        # Everything below runs after every future in the batch has
        # resolved — flight capture and shadow mirroring never sit on
        # the request latency path.
        if capture and outcomes:
            self._record_flight(span, now, outcomes)
        shadow = self.shadow
        if shadow is not None:
            for request, result in outcomes:
                if result.status is ResultStatus.OK:
                    shadow.offer(
                        result.request_id,
                        request.series,
                        result.label,
                        result.latency_ms,
                    )
        drift = self.drift
        if drift is not None:
            for request, result in outcomes:
                if result.status is ResultStatus.OK and result.features is not None:
                    drift.observe(
                        result.request_id,
                        request.series,
                        result.features,
                        batch_id=result.batch_id,
                    )

    def _finish(self, request, future, result, outcomes) -> None:
        """Resolve one future and keep the outcome for flight capture."""
        self.metrics.observe("serve.latency_seconds", result.latency_ms / 1000.0)
        future.set_result(result)
        outcomes.append((request, result))

    def _record_flight(self, span, picked_up_at: float, outcomes) -> None:
        """Capture and log the batch's anomalous requests.

        Runs *after* every future in the batch has resolved, so
        recording and logging never sit on the request latency path.
        """
        spans = span_subtree(span)
        for request, result in outcomes:
            if result.status is ResultStatus.OK and not result.deadline_missed:
                if not self.slow_ms or result.latency_ms < self.slow_ms:
                    continue
                reason = "slow"
            elif result.status is ResultStatus.TIMEOUT:
                reason = "timeout"
            elif result.status is ResultStatus.ERROR:
                reason = "error"
            else:
                reason = "late"
            slack_ms = None
            if request.deadline is not None:
                finished = request.enqueued_at + result.latency_ms / 1000.0
                slack_ms = (request.deadline - finished) * 1000.0
            self.flight.record(
                FlightRecord(
                    request_id=result.request_id,
                    status=result.status.value,
                    reason=reason,
                    batch_id=result.batch_id,
                    queue_wait_ms=(picked_up_at - request.enqueued_at) * 1000.0,
                    latency_ms=result.latency_ms,
                    deadline_slack_ms=slack_ms,
                    error_code=result.error_code,
                    error_message=result.error_message,
                    spans=spans,
                )
            )
            _log.log(
                logging.ERROR if reason == "error" else logging.WARNING,
                "request %s",
                reason,
                extra={
                    "request_id": result.request_id,
                    "batch_id": result.batch_id,
                    "status": result.status.value,
                    "latency_ms": round(result.latency_ms, 3),
                    "deadline_slack_ms": None
                    if slack_ms is None
                    else round(slack_ms, 3),
                },
            )
