"""One validated configuration object for every serving tier.

:class:`~repro.serve.service.PredictionService` and
:class:`~repro.serve.shard.ShardedPredictionService` grew their knobs
one PR at a time — micro-batching, deadlines, flight capture, admin
port, admission control — until each constructor carried ~10 sprawling
keyword arguments and the CLI mirrored every one as a flag. This module
consolidates all of them into a single **frozen** :class:`ServeConfig`
dataclass:

* one place validates every knob (``__post_init__``), so both tiers and
  the CLI reject bad values identically and immediately;
* ``from_args`` maps the ``rpm predict`` / ``rpm serve`` argparse
  namespace onto a config, so adding a knob is one field + one flag;
* ``to_dict`` / ``replace`` make configs loggable and derivable
  (``config.replace(max_batch=64)``) without mutation.

The old per-knob constructor keywords still work for one release
through a :func:`repro.base.keyword_only`-style shim that emits a
:class:`DeprecationWarning` — see the service constructors.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, fields

__all__ = ["ServeConfig", "apply_legacy_kwargs"]


@dataclass(frozen=True)
class ServeConfig:
    """Every serving knob, validated once, shared by both tiers.

    Single-process :class:`~repro.serve.service.PredictionService`
    ignores the sharding block (``n_shards`` and below);
    :class:`~repro.serve.shard.ShardedPredictionService` reads all of
    it (``n_shards=0`` there means "use the tier's default of 2").
    """

    #: Largest number of requests coalesced into one model call.
    max_batch: int = 32
    #: Longest a batch window stays open waiting for more requests
    #: (milliseconds); ``0`` disables coalescing.
    max_delay_ms: float = 2.0
    #: Deadline applied to requests that do not bring their own;
    #: ``None`` means no deadline.
    default_deadline_ms: float | None = None
    #: Strict input validation at submit time (length/NaN/dtype).
    validate: bool = True
    #: Run the model warm-up batch on start (readiness gates on it).
    warmup: bool = True
    #: OK requests at or above this latency are flight-recorded as
    #: slow; ``0`` disables slow capture.
    slow_ms: float = 250.0
    #: Flight-recorder ring size; ``0`` disables request capture.
    flight_capacity: int = 128
    #: Embedded admin endpoint port (``None`` = no admin server,
    #: ``0`` = ephemeral).
    admin_port: int | None = None
    #: Admin endpoint bind host (loopback by default).
    admin_host: str = "127.0.0.1"
    # -- sharded tier ------------------------------------------------------
    #: Worker process count for the sharded tier; ``0`` = "tier
    #: default" (single-process service ignores it, the sharded tier
    #: reads it as 2).
    n_shards: int = 0
    #: Shed requests with typed ``OVERLOAD`` when a shard's estimated
    #: queue wait exceeds this budget; ``None`` disables the estimate.
    admission_budget_ms: float | None = None
    #: Hard cap on in-flight requests per shard.
    max_queue_per_shard: int = 256
    #: Multiprocessing start method for shard workers.
    mp_context: str = "spawn"
    #: How long the sharded tier waits for every worker to warm up.
    start_timeout_s: float = 120.0
    # -- shadow scoring ----------------------------------------------------
    #: Fraction of OK traffic mirrored onto an attached shadow
    #: candidate (deterministic every-k-th sampling; ``1.0`` = all).
    shadow_fraction: float = 0.1
    # -- drift monitoring --------------------------------------------------
    #: Fold resolved OK traffic into live distribution sketches and
    #: compare against the model's training reference (requires a
    #: reference: a registry version published with ``reference=True``
    #: or one built from the artifact at attach time).
    drift: bool = False
    #: Recent-window half-life of the live sketches, in observations
    #: on the monitor's global clock (summed across shards) — after
    #: this many further rows, earlier traffic carries half its weight
    #: in the drift comparison, idle shards included.
    drift_window: int = 256
    #: Aggregate drift score (max per-column PSI) above which the
    #: monitor alerts; 0.25 is the conventional "significant shift"
    #: PSI reading.
    drift_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_delay_ms < 0:
            raise ValueError(f"max_delay_ms must be >= 0, got {self.max_delay_ms}")
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ValueError(
                f"default_deadline_ms must be > 0, got {self.default_deadline_ms}"
            )
        if self.slow_ms < 0:
            raise ValueError(f"slow_ms must be >= 0, got {self.slow_ms}")
        if self.flight_capacity < 0:
            raise ValueError(
                f"flight_capacity must be >= 0, got {self.flight_capacity}"
            )
        if self.admin_port is not None and self.admin_port < 0:
            raise ValueError(f"admin_port must be >= 0, got {self.admin_port}")
        if self.n_shards < 0:
            raise ValueError(f"n_shards must be >= 0, got {self.n_shards}")
        if self.admission_budget_ms is not None and self.admission_budget_ms <= 0:
            raise ValueError(
                f"admission_budget_ms must be > 0, got {self.admission_budget_ms}"
            )
        if self.max_queue_per_shard < 1:
            raise ValueError(
                f"max_queue_per_shard must be >= 1, got {self.max_queue_per_shard}"
            )
        if self.mp_context not in ("spawn", "fork", "forkserver"):
            raise ValueError(
                f"mp_context must be spawn/fork/forkserver, got {self.mp_context!r}"
            )
        if self.start_timeout_s <= 0:
            raise ValueError(
                f"start_timeout_s must be > 0, got {self.start_timeout_s}"
            )
        if not 0.0 < self.shadow_fraction <= 1.0:
            raise ValueError(
                f"shadow_fraction must be in (0, 1], got {self.shadow_fraction}"
            )
        if self.drift_window < 1:
            raise ValueError(
                f"drift_window must be >= 1, got {self.drift_window}"
            )
        if self.drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be > 0, got {self.drift_threshold}"
            )

    # -- construction helpers --------------------------------------------------

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """Every knob name, in declaration order."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_args(cls, args) -> "ServeConfig":
        """Build a config from the ``rpm predict`` / ``rpm serve``
        argparse namespace (missing attributes keep their defaults)."""
        defaults = cls()
        mapping = {
            "max_batch": getattr(args, "max_batch", defaults.max_batch),
            "max_delay_ms": getattr(args, "max_delay_ms", defaults.max_delay_ms),
            "default_deadline_ms": getattr(
                args, "deadline_ms", defaults.default_deadline_ms
            ),
            "warmup": not getattr(args, "no_warmup", False),
            "slow_ms": getattr(args, "slow_ms", defaults.slow_ms),
            "flight_capacity": getattr(
                args, "flight_size", defaults.flight_capacity
            ),
            "admin_port": getattr(args, "http_port", defaults.admin_port),
            "n_shards": getattr(args, "shards", defaults.n_shards),
            "admission_budget_ms": getattr(
                args, "admission_budget_ms", defaults.admission_budget_ms
            ),
            "max_queue_per_shard": getattr(
                args, "max_queue", defaults.max_queue_per_shard
            ),
            "shadow_fraction": getattr(
                args, "shadow_fraction", defaults.shadow_fraction
            ),
            "drift": getattr(args, "drift", defaults.drift),
            "drift_window": getattr(args, "drift_window", defaults.drift_window),
            "drift_threshold": getattr(
                args, "drift_threshold", defaults.drift_threshold
            ),
        }
        return cls(**mapping)

    def to_dict(self) -> dict:
        """The config as one JSON-safe ``{knob: value}`` dict."""
        return dataclasses.asdict(self)

    def replace(self, **changes) -> "ServeConfig":
        """A new config with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


def apply_legacy_kwargs(
    config: ServeConfig | None, legacy: dict, *, owner: str
) -> ServeConfig:
    """Fold deprecated per-knob constructor keywords into a config.

    The service constructors accept ``config=ServeConfig(...)`` as the
    one supported spelling; the historical per-knob keywords
    (``max_batch=…``, ``n_shards=…``, …) still work for one release
    through this shim — same migration pattern as
    :func:`repro.base.keyword_only`. Unknown keywords raise
    :class:`TypeError` exactly like a normal signature mismatch; mixing
    ``config=`` with legacy keywords is ambiguous and also raises.
    """
    unknown = sorted(set(legacy) - set(ServeConfig.field_names()))
    if unknown:
        raise TypeError(
            f"{owner}() got unexpected keyword arguments: {', '.join(unknown)}"
        )
    if not legacy:
        return config if config is not None else ServeConfig()
    if config is not None:
        raise TypeError(
            f"{owner}(): pass either config=ServeConfig(...) or the legacy "
            f"per-knob keywords, not both"
        )
    warnings.warn(
        f"{owner}({', '.join(sorted(legacy))}=...) per-knob constructor "
        f"keywords are deprecated and will be removed next release; pass "
        f"config=ServeConfig(...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ServeConfig(**legacy)
