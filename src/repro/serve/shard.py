"""Sharded multi-process serving tier over a compiled pattern bank.

A single :class:`~repro.serve.service.PredictionService` is bounded by
one process's worth of CPU: NumPy releases the GIL inside the distance
kernels, but the Python batching loop, the SVM and the per-request
bookkeeping all contend for it. This module scales the same typed
serving contract across **N worker processes** without N copies of the
pattern bank:

* :class:`SharedPatternBank` exports a :class:`CompiledModel`'s
  pre-normalized per-length buckets into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` block. The parent
  builds it once; every worker attaches read-only views and serves
  straight out of them — bank memory is paid once, not per shard.
* :class:`ShardedPredictionService` is the dispatcher: deterministic
  round-robin routing over per-worker request queues, one shared
  results queue, and the exact client API of ``PredictionService``
  (``submit`` / ``predict_one`` / ``predict_many`` / ``predict``).
* **Admission control**: when a shard's estimated queue wait (inflight
  × EWMA per-request service time) exceeds ``admission_budget_ms``, or
  its inflight count hits ``max_queue_per_shard``, the request is shed
  at submit time with a typed ``OVERLOAD`` result — bounded queues
  instead of unbounded latency.
* **Worker recycle / crash recovery**: the dispatcher keeps every
  accepted request in a pending table until its result arrives, so a
  worker that is recycled (:meth:`ShardedPredictionService.recycle`) or
  killed mid-batch loses nothing — its unresolved requests are
  re-dispatched to a fresh worker on a fresh queue. Results are
  deduplicated by request ID (pop-on-arrival), so a request computed
  twice still resolves exactly once.

Workers are started with the ``spawn`` context by default: the
dispatcher runs collector/monitor threads, and forking a threaded
process is how deadlocks are born. Every floating-point input a worker
needs (shm bank values, pickled ``qq`` norms, the classifier) travels
byte-exact, and the per-row arithmetic is the training transform's, so
sharded predictions are **bitwise identical** to the single-process
service and to ``RPMClassifier.predict`` — pinned by the shard test
suite.

Shared-memory lifetime: the parent owns the segment. ``stop()`` (or the
context-manager exit) closes and unlinks it; workers unregister their
attachment from the stdlib resource tracker so a dying worker can never
unlink the bank out from under its siblings.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import queue as queue_mod
import threading
import time
from concurrent.futures import Future
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..obs import resolve_tracer
from ..obs.metrics import MetricsRegistry, registry
from .admin import AdminServer
from .compiled import CompiledModel, _Bucket
from .config import ServeConfig, apply_legacy_kwargs
from .flight import FlightRecord, FlightRecorder
from .lifecycle import ModelHandle, ShadowReport, ShadowScorer
from .monitor import DriftMonitor, resolve_reference
from .types import PredictionRequest, PredictionResult, ResultStatus, validate_series

__all__ = ["SharedPatternBank", "ShardedPredictionService"]

_log = logging.getLogger("repro.serve.shard")


def shard_metric(name: str, shard: int) -> str:
    """Registry key for a per-shard series: ``serve.requests[shard=0]``.

    The bracket suffix is the label convention
    :func:`repro.obs.export.to_prometheus` parses back into Prometheus
    labels (``serve_requests_total{shard="0"}``); in ``rpm metrics`` /
    JSON snapshots the bracketed name appears verbatim.
    """
    return f"{name}[shard={shard}]"


# ---------------------------------------------------------------------------
# Shared pattern bank
# ---------------------------------------------------------------------------


class SharedPatternBank:
    """A compiled pattern bank packed into one shared-memory block.

    Layout: a single float64 vector holding, back to back, every raw
    pattern's values followed by every native-plan bucket's
    pre-z-normalized prototype. All offsets are in float64 elements, so
    every view is 8-byte aligned. The :attr:`spec` dict carries the
    offsets plus the non-array compile products (``q_is_flat`` flags,
    ``qq`` squared norms, bucket column maps) and travels to workers by
    pickle — floats round-trip exactly, which the bitwise-equivalence
    guarantee depends on.

    Build in the parent with :meth:`build`, attach in each worker with
    :meth:`attach`. The parent calls :meth:`close` + :meth:`unlink` at
    shutdown; workers only ever :meth:`close`.
    """

    def __init__(self, shm, spec: dict, *, owner: bool) -> None:
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self._closed = False
        base = np.ndarray((spec["n_floats"],), dtype=np.float64, buffer=shm.buf)
        if not owner:
            base.flags.writeable = False
        self._base = base
        self.values = [base[off : off + n] for off, n in spec["values"]]
        self.native_plan = [
            _Bucket(
                length,
                list(cols),
                [
                    _SharedPrenormalized(base[q_off : q_off + q_len], q_is_flat, qq)
                    for q_off, q_len, q_is_flat, qq in pres
                ],
            )
            for length, cols, pres in spec["buckets"]
        ]

    @classmethod
    def build(cls, model: CompiledModel) -> "SharedPatternBank":
        """Pack ``model``'s values and native plan into fresh shm."""
        values = model._values
        plan = model._native_plan
        n_floats = sum(v.size for v in values) + sum(
            pre.q.size for bucket in plan for pre in bucket.pres
        )
        shm = shared_memory.SharedMemory(create=True, size=max(8, n_floats * 8))
        base = np.ndarray((n_floats,), dtype=np.float64, buffer=shm.buf)
        off = 0
        value_spec = []
        for v in values:
            base[off : off + v.size] = v
            value_spec.append((off, int(v.size)))
            off += v.size
        bucket_spec = []
        for bucket in plan:
            pres = []
            for pre in bucket.pres:
                base[off : off + pre.q.size] = pre.q
                pres.append((off, int(pre.q.size), bool(pre.q_is_flat), float(pre.qq)))
                off += pre.q.size
            bucket_spec.append((int(bucket.length), list(bucket.cols), pres))
        spec = {
            "shm_name": shm.name,
            "n_floats": int(n_floats),
            "values": value_spec,
            "buckets": bucket_spec,
        }
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: dict) -> "SharedPatternBank":
        """Attach read-only views in a worker process.

        Python's :class:`~multiprocessing.shared_memory.SharedMemory`
        registers the segment with the resource tracker even on a plain
        attach — and spawn children share the parent's tracker process,
        so a worker registering and later unregistering would strip the
        *parent's* registration (the tracker cache is one set per
        name). The attach must therefore never register at all: via
        ``track=False`` where available (3.13+), otherwise by masking
        ``resource_tracker.register`` for the duration of the attach.
        The parent stays the sole registrant and the sole unlinker.
        """
        try:
            shm = shared_memory.SharedMemory(name=spec["shm_name"], track=False)
        except TypeError:  # Python < 3.13: no track kwarg
            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=spec["shm_name"])
            finally:
                resource_tracker.register = original_register
        return cls(shm, spec, owner=False)

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if self._closed:
            return
        self._closed = True
        self.values = []
        self.native_plan = []
        self._base = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only, after every close)."""
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class _SharedPrenormalized:
    """A :class:`~repro.runtime.kernel.PrenormalizedPattern` whose ``q``
    is a shared-memory view instead of a private array.

    Same attribute contract (``q`` / ``q_is_flat`` / ``qq`` /
    ``length``), so the distance kernels cannot tell the difference —
    only the storage moved.
    """

    __slots__ = ("q", "q_is_flat", "qq", "length")

    def __init__(self, q: np.ndarray, q_is_flat: bool, qq: float) -> None:
        self.q = q
        self.q_is_flat = q_is_flat
        self.qq = qq
        self.length = int(q.size)


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _shard_worker_main(
    shard_id: int,
    generation: int,
    bank_spec: dict,
    payload: dict,
    knobs: dict,
    request_q,
    result_q,
) -> None:
    """Entry point of one shard worker (module-level: spawn-picklable).

    Mirrors the single-process batching loop: the first request opens a
    window, more join until ``max_batch`` / ``max_delay_ms``, the batch
    runs through the shm-backed compiled model, and every request is
    answered with a typed :class:`PredictionResult` carrying this
    shard's ID. A ``None`` sentinel means drain-and-stop; a model
    failure yields per-request ``ERROR`` results, never a dead loop.
    """
    bank = SharedPatternBank.attach(bank_spec)
    try:
        model = CompiledModel.from_shared_bank(
            bank.values,
            bank.native_plan,
            payload["classifier"],
            rotation_invariant=payload["rotation_invariant"],
            classes=payload["classes"],
            series_length=payload["series_length"],
            n_jobs=1,
            kernel_backend=payload["kernel_backend"],
        )
        if knobs["warmup"]:
            model.warmup(n=min(4, knobs["max_batch"]))
        result_q.put(("ready", shard_id, generation))
        max_batch = knobs["max_batch"]
        max_delay_s = knobs["max_delay_ms"] / 1000.0
        batches_done = 0
        while True:
            item = request_q.get()
            stopping = item is None
            batch = [] if stopping else [item]
            if not stopping:
                window_closes = time.monotonic() + max_delay_s
                while len(batch) < max_batch:
                    remaining = window_closes - time.monotonic()
                    if remaining <= 0:
                        break
                    try:
                        nxt = request_q.get(timeout=max(remaining, 1e-4))
                    except queue_mod.Empty:
                        break
                    if nxt is None:
                        stopping = True
                        break
                    batch.append(nxt)
            if stopping:
                while True:
                    try:
                        nxt = request_q.get_nowait()
                    except queue_mod.Empty:
                        break
                    if nxt is not None:
                        batch.append(nxt)
            for lo in range(0, len(batch), max_batch):
                batches_done += 1
                _shard_process(
                    model,
                    batch[lo : lo + max_batch],
                    shard_id,
                    generation,
                    batches_done,
                    result_q,
                    payload.get("model_version"),
                )
            if stopping:
                result_q.put(("stopped", shard_id, generation))
                return
    finally:
        bank.close()


def _shard_process(
    model, batch, shard_id, generation, batch_id, result_q, model_version=None
) -> None:
    """Run one micro-batch and emit per-request result messages.

    ``model_version`` rides in from the worker's spawn payload: a
    recycled (post-swap) worker serves the new version, while a worker
    still draining the old generation stamps the old one — results are
    always attributed to the exact artifact that computed them.
    """
    now = time.monotonic()
    t_model = 0.0
    live = []
    for request in batch:
        if request.deadline is not None and now > request.deadline:
            result_q.put(
                (
                    "res",
                    shard_id,
                    generation,
                    PredictionResult(
                        request_id=request.request_id,
                        status=ResultStatus.TIMEOUT,
                        deadline_missed=True,
                        latency_ms=(now - request.enqueued_at) * 1000.0,
                        batch_id=batch_id,
                        shard=shard_id,
                        model_version=model_version,
                    ),
                    now - request.enqueued_at,
                )
            )
        else:
            live.append(request)
    if live:
        X = np.stack([request.series for request in live])
        t0 = time.monotonic()
        try:
            features = model.transform(X)
            labels = model.classifier.predict(features)
        except Exception as exc:  # typed results, never a dead worker
            done = time.monotonic()
            t_model = done - t0
            for request in live:
                result_q.put(
                    (
                        "res",
                        shard_id,
                        generation,
                        PredictionResult(
                            request_id=request.request_id,
                            status=ResultStatus.ERROR,
                            error_code="model-failure",
                            error_message=f"{type(exc).__name__}: {exc}",
                            latency_ms=(done - request.enqueued_at) * 1000.0,
                            batch_id=batch_id,
                            shard=shard_id,
                            model_version=model_version,
                        ),
                        now - request.enqueued_at,
                    )
                )
        else:
            done = time.monotonic()
            t_model = done - t0
            for i, request in enumerate(live):
                late = request.deadline is not None and done > request.deadline
                result_q.put(
                    (
                        "res",
                        shard_id,
                        generation,
                        PredictionResult(
                            request_id=request.request_id,
                            status=ResultStatus.OK,
                            label=labels[i],
                            deadline_missed=late,
                            latency_ms=(done - request.enqueued_at) * 1000.0,
                            batch_id=batch_id,
                            shard=shard_id,
                            model_version=model_version,
                            features=features[i],
                        ),
                        now - request.enqueued_at,
                    )
                )
    result_q.put(("batch", shard_id, generation, len(batch), t_model))


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------


class _ShardState:
    """Parent-side bookkeeping for one worker slot."""

    __slots__ = (
        "shard_id",
        "generation",
        "process",
        "request_q",
        "result_q",
        "state",
        "ready",
        "crashes",
    )

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.generation = 0
        self.process = None
        self.request_q = None
        self.result_q = None
        self.state = "new"  # new | starting | up | draining | stopped | dead
        self.ready = False
        # Consecutive deaths before reaching ready; a shard that
        # crash-loops this way is marked dead instead of respawned
        # forever (see _MAX_CRASH_RESPAWNS).
        self.crashes = 0


#: Consecutive never-became-ready worker deaths before a shard is
#: declared dead rather than respawned again — a worker that cannot
#: even finish warm-up (broken environment, unimportable module) would
#: otherwise crash-loop forever.
_MAX_CRASH_RESPAWNS = 3


class _Pending:
    """One accepted, not-yet-resolved request."""

    __slots__ = ("request", "future", "shard")

    def __init__(self, request: PredictionRequest, future: Future, shard: int) -> None:
        self.request = request
        self.future = future
        self.shard = shard


class ShardedPredictionService:
    """Multi-process sharded front-end with the PredictionService API.

    Parameters
    ----------
    model:
        A :class:`CompiledModel` or a
        :class:`~repro.serve.lifecycle.ModelHandle` (registry-backed
        handles enable version-name hot-swap; see :meth:`swap`).
    config:
        The one :class:`~repro.serve.config.ServeConfig`. The sharded
        tier reads the whole config, including ``n_shards`` (``0`` =
        this tier's default of 2), ``admission_budget_ms``,
        ``max_queue_per_shard``, ``mp_context`` and
        ``start_timeout_s``. The historical per-knob keywords still
        work for one release and emit a :class:`DeprecationWarning`.
    trace / metrics:
        Observability wiring; defaults to the no-op tracer and the
        process-wide registry.

    The model's pattern bank is exported once into shared memory
    (:class:`SharedPatternBank`); the classifier travels to workers by
    pickle. Predictions are bitwise identical to the single-process
    service — routing, batching and process boundaries never change a
    bit.
    """

    def __init__(
        self,
        model: CompiledModel | ModelHandle,
        *,
        config: ServeConfig | None = None,
        trace=None,
        metrics: MetricsRegistry | None = None,
        **legacy,
    ) -> None:
        config = apply_legacy_kwargs(config, legacy, owner="ShardedPredictionService")
        self.config = config
        self.handle = model if isinstance(model, ModelHandle) else ModelHandle(model)
        self.n_shards = config.n_shards or 2
        self.max_batch = config.max_batch
        self.max_delay_ms = config.max_delay_ms
        self.default_deadline_ms = config.default_deadline_ms
        self.validate = config.validate
        self._warmup = config.warmup
        self.admission_budget_ms = config.admission_budget_ms
        self.max_queue_per_shard = config.max_queue_per_shard
        self.slow_ms = config.slow_ms
        self.flight = FlightRecorder(config.flight_capacity)
        self.admin: AdminServer | None = None
        self._admin_port = config.admin_port
        self._admin_host = config.admin_host
        self._mp_context = config.mp_context
        self.start_timeout_s = config.start_timeout_s
        self.shadow: ShadowScorer | None = None
        self._shadow_owns_candidate = False
        self.drift: DriftMonitor | None = None
        self._swap_lock = threading.Lock()
        self.tracer = resolve_tracer(trace)
        self.metrics = metrics if metrics is not None else registry()
        self._ctx = mp.get_context(config.mp_context)
        self._shards = [_ShardState(i) for i in range(self.n_shards)]
        self._pending: dict[str, _Pending] = {}
        self._lock = threading.Lock()  # pending table + shard states + routing
        self._submit_lock = threading.Lock()  # submit vs stop
        self._running = False
        self._stopping = threading.Event()
        self._collector: threading.Thread | None = None
        self._monitor: threading.Thread | None = None
        self._ready_event = threading.Event()
        self._bank: SharedPatternBank | None = None
        self._next_id = 0
        self._rr = 0
        # EWMA of per-request model service time, seconds; feeds the
        # admission estimate. None until the first batch reports.
        self._service_ewma_s: float | None = None
        self._inflight = [0] * self.n_shards

    # -- lifecycle -------------------------------------------------------------

    @property
    def model(self) -> CompiledModel:
        """The live compiled model (hot-swappable; see :meth:`swap`)."""
        return self.handle.model

    @property
    def model_version(self) -> str | None:
        """The live model's version name (``None`` when untracked)."""
        return self.handle.version

    @property
    def running(self) -> bool:
        """Liveness: the dispatcher accepts requests."""
        return self._running

    @property
    def ready(self) -> bool:
        """Readiness: running and every shard's warm-up completed."""
        return self._running and self._ready_event.is_set()

    def _payload(self) -> dict:
        return {
            "classifier": self.model.classifier,
            "classes": self.model.classes,
            "series_length": self.model.series_length,
            "rotation_invariant": self.model.rotation_invariant,
            "kernel_backend": self.model.kernel_backend,
            "model_version": self.handle.version,
        }

    def _knobs(self) -> dict:
        return {
            "max_batch": self.max_batch,
            "max_delay_ms": self.max_delay_ms,
            "warmup": self._warmup,
        }

    def _spawn(self, shard: _ShardState) -> None:
        """(Re)launch one worker on fresh request *and* result queues.

        Fresh queues every generation, both directions. Requests: a
        dead worker's old queue may still hold accepted items nobody
        will ever read — those are re-dispatched from the pending
        table, and reusing the queue would double-deliver them.
        Results: queues are deliberately **per shard**, never shared —
        a worker killed mid-write would leave a shared queue's writer
        lock held and its byte stream truncated, wedging every other
        shard's results behind it. Per-shard, a kill only corrupts the
        dead worker's own channel; its unresolved requests are
        re-dispatched and the channel is discarded.
        """
        shard.generation += 1
        shard.request_q = self._ctx.Queue()
        shard.result_q = self._ctx.Queue()
        shard.ready = False
        shard.state = "starting"
        shard.process = self._ctx.Process(
            target=_shard_worker_main,
            args=(
                shard.shard_id,
                shard.generation,
                self._bank.spec,
                self._payload(),
                self._knobs(),
                shard.request_q,
                shard.result_q,
            ),
            name=f"rpm-shard-{shard.shard_id}",
            daemon=True,
        )
        shard.process.start()

    def start(self) -> "ShardedPredictionService":
        """Export the bank, spawn every shard, wait for readiness."""
        if self._running:
            return self
        self._stopping.clear()
        self._ready_event.clear()
        self._bank = SharedPatternBank.build(self.model)
        self._publish_model_metrics()
        for shard in self._shards:
            self._spawn(shard)
        self._running = True
        self._collector = threading.Thread(
            target=self._collect, name="rpm-shard-collector", daemon=True
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="rpm-shard-monitor", daemon=True
        )
        self._monitor.start()
        if not self._ready_event.wait(self.start_timeout_s):
            self.stop()
            raise RuntimeError(
                f"sharded service failed to become ready within "
                f"{self.start_timeout_s:.0f}s"
            )
        if self._admin_port is not None and self.admin is None:
            self.admin = AdminServer(
                self, host=self._admin_host, port=self._admin_port
            ).start()
        _log.info(
            "sharded prediction service started",
            extra={
                "model": self.model.describe(),
                "n_shards": self.n_shards,
                "admin_url": self.admin.url() if self.admin else None,
            },
        )
        return self

    def stop(self) -> None:
        """Drain-and-stop: accepted requests are still answered."""
        with self._submit_lock:
            if not self._running:
                return
            self._running = False
        deadline = time.monotonic() + 30.0
        for shard in self._shards:
            if shard.process is not None and shard.process.is_alive():
                shard.state = "draining"
                shard.request_q.put(None)
        # Accepted work resolves through the collector as workers drain.
        while self._pending and time.monotonic() < deadline:
            time.sleep(0.01)
        for shard in self._shards:
            if shard.process is not None:
                shard.process.join(timeout=max(0.1, deadline - time.monotonic()))
                if shard.process.is_alive():  # pragma: no cover - wedged worker
                    shard.process.terminate()
                    shard.process.join(timeout=5.0)
                shard.state = "stopped"
                shard.process = None
            if shard.request_q is not None:
                shard.request_q.close()
                shard.request_q.cancel_join_thread()
                shard.request_q = None
        self._stopping.set()
        if self._collector is not None:
            self._collector.join(timeout=10.0)
            self._collector = None
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        # Result queues close only after the collector has swept the
        # drained workers' final messages.
        for shard in self._shards:
            if shard.result_q is not None:
                shard.result_q.close()
                shard.result_q.cancel_join_thread()
                shard.result_q = None
        # Anything a wedged or killed worker never answered gets a
        # typed result.
        with self._lock:
            stragglers = list(self._pending.values())
            self._pending.clear()
        for entry in stragglers:
            self._account_dequeue(entry.shard)
            entry.future.set_result(
                PredictionResult(
                    request_id=entry.request.request_id,
                    status=ResultStatus.ERROR,
                    error_code="service-stopped",
                    error_message="service stopped before the request was answered",
                    shard=entry.shard,
                    model_version=self.handle.version,
                )
            )
        if self._bank is not None:
            self._bank.close()
            self._bank.unlink()
            self._bank = None
        if self.admin is not None:
            self.admin.stop()
            self.admin = None
        self.detach_shadow()
        self.detach_drift()
        _log.info(
            "sharded prediction service stopped",
            extra={
                "requests": self.metrics.counter_value("serve.requests"),
                "batches": self.metrics.counter_value("serve.batches"),
            },
        )

    def __enter__(self) -> "ShardedPredictionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- model lifecycle -------------------------------------------------------

    def _publish_model_metrics(self) -> None:
        self.metrics.set_gauge("serve.model_version", float(self.handle.generation))
        if self.handle.version:
            self.metrics.set_gauge(
                f"serve.model_version[version={self.handle.version}]",
                float(self.handle.generation),
            )

    def swap(self, target, *, version: str | None = None, warm: bool = True) -> str:
        """Hot-swap every shard onto a new model, dropping no requests.

        The orchestration is a rolling recycle:

        1. resolve + warm the incoming model in the parent and flip the
           :class:`ModelHandle` pointer (new submissions now validate
           against the new model; spawn payloads carry the new version);
        2. export the new bank into a fresh shared-memory segment;
        3. :meth:`recycle` each shard in turn — the old worker drains
           its queue (answering with the *old* version, generation-
           tagged), then a fresh worker attaches the new bank. With
           ``n_shards >= 2`` the other shards keep serving throughout,
           so readiness never flips;
        4. close + unlink the old bank only after the last old worker
           has exited — no worker ever maps a vanished segment.

        Every accepted request resolves exactly once, stamped with the
        version of the model that actually computed it (pinned by the
        sharded swap test).
        """
        if not self._running:
            raise RuntimeError("cannot swap a stopped service")
        with self._swap_lock:
            resolved = self.handle.swap(target, version=version, warm=warm)
            old_bank = self._bank
            self._bank = SharedPatternBank.build(self.model)
            for shard in self._shards:
                self.recycle(shard.shard_id)
            old_bank.close()
            old_bank.unlink()
            self.metrics.inc("serve.swaps")
            self._publish_model_metrics()
        _log.info(
            "sharded model hot-swapped",
            extra={
                "version": resolved,
                "generation": self.handle.generation,
                "model": self.model.describe(),
            },
        )
        return resolved

    def describe_model(self) -> dict:
        """JSON-safe live-model state (the admin ``GET /model`` body)."""
        info = self.handle.describe()
        shadow = self.shadow
        if shadow is not None:
            info["shadow"] = shadow.report().as_record()
        return info

    def attach_shadow(
        self,
        candidate,
        *,
        version: str | None = None,
        fraction: float | None = None,
        max_backlog: int = 512,
    ) -> ShadowScorer:
        """Mirror a fraction of OK traffic onto ``candidate``.

        The candidate runs in the *parent* process on the shadow
        thread, fed from the collector after futures resolve — the
        worker hot path never sees it.
        """
        if self.shadow is not None:
            raise RuntimeError(
                "a shadow candidate is already attached; detach_shadow() first"
            )
        owns = not isinstance(candidate, CompiledModel)
        model, resolved = self.handle._resolve(candidate, version_hint=version)
        scorer = ShadowScorer(
            model,
            version=resolved,
            fraction=self.config.shadow_fraction if fraction is None else fraction,
            max_backlog=max_backlog,
            metrics=self.metrics,
            flight=self.flight,
        )
        self._shadow_owns_candidate = owns
        self.shadow = scorer.start()
        return scorer

    def detach_shadow(self) -> ShadowReport | None:
        """Stop shadow scoring; returns the final report (idempotent)."""
        scorer, self.shadow = self.shadow, None
        if scorer is None:
            return None
        scorer.stop()
        report = scorer.report()
        if self._shadow_owns_candidate:
            scorer.candidate.close()
        self._shadow_owns_candidate = False
        return report

    def shadow_report(self) -> ShadowReport | None:
        """The live shadow run's aggregate so far (``None`` when off)."""
        return None if self.shadow is None else self.shadow.report()

    # -- drift monitoring ------------------------------------------------------

    def attach_drift(
        self,
        reference=None,
        *,
        window: int | None = None,
        threshold: float | None = None,
        max_backlog: int = 4096,
    ) -> DriftMonitor:
        """Compare live traffic against a training reference, off-path.

        The monitor runs in the *parent* process: the collector thread
        offers each OK result's feature row (tagged with its shard) as
        it resolves futures, and the monitor keeps per-shard sketches
        that it aggregates by sketch merge at evaluation time — the
        worker hot path never sees any of it.
        """
        if self.drift is not None:
            raise RuntimeError(
                "a drift monitor is already attached; detach_drift() first"
            )
        ref = resolve_reference(
            reference, self.handle, n_columns=self.model.n_patterns
        )
        monitor = DriftMonitor(
            ref,
            window=self.config.drift_window if window is None else window,
            threshold=(
                self.config.drift_threshold if threshold is None else threshold
            ),
            max_backlog=max_backlog,
            metrics=self.metrics,
            flight=self.flight,
        )
        self.drift = monitor.start()
        _log.info(
            "drift monitor attached",
            extra={
                "window": monitor.window,
                "threshold": monitor.threshold,
                "reference": ref.meta(),
            },
        )
        return monitor

    def detach_drift(self) -> dict | None:
        """Stop drift monitoring; returns the final evaluation payload
        (``None`` when no monitor was attached or nothing was folded)."""
        monitor, self.drift = self.drift, None
        if monitor is None:
            return None
        monitor.stop()
        return monitor.flush()

    def describe_drift(self) -> dict | None:
        """The live monitor's state (the admin ``GET /drift`` body);
        ``None`` when drift monitoring is off."""
        return None if self.drift is None else self.drift.describe()

    # -- routing & admission ---------------------------------------------------

    def _new_id(self) -> str:
        self._next_id += 1
        return f"req-{self._next_id}"

    def _route(self) -> _ShardState | None:
        """Next live shard, deterministic round-robin; None if all down."""
        for _ in range(self.n_shards):
            shard = self._shards[self._rr % self.n_shards]
            self._rr += 1
            if shard.state in ("starting", "up"):
                return shard
        return None

    def _admit(self, shard: _ShardState) -> tuple[bool, str | None]:
        """Admission decision for one routed request (under _lock)."""
        inflight = self._inflight[shard.shard_id]
        if inflight >= self.max_queue_per_shard:
            return False, (
                f"shard {shard.shard_id} at max_queue_per_shard="
                f"{self.max_queue_per_shard}"
            )
        if self.admission_budget_ms is not None and self._service_ewma_s is not None:
            est_wait_ms = inflight * self._service_ewma_s * 1000.0
            if est_wait_ms > self.admission_budget_ms:
                return False, (
                    f"estimated wait {est_wait_ms:.1f}ms on shard "
                    f"{shard.shard_id} exceeds budget "
                    f"{self.admission_budget_ms:.1f}ms"
                )
        return True, None

    def _account_dequeue(self, shard_id: int) -> None:
        self.metrics.add_gauge("serve.queue_depth", -1)
        self.metrics.add_gauge(shard_metric("serve.queue_depth", shard_id), -1)
        with self._lock:
            self._inflight[shard_id] = max(0, self._inflight[shard_id] - 1)

    # -- submission ------------------------------------------------------------

    def submit(self, series, *, deadline_ms: float | None = None) -> Future:
        """Enqueue one series; returns a future of a PredictionResult.

        Invalid input resolves immediately with ``INVALID``; an
        over-budget shard resolves immediately with ``OVERLOAD`` —
        neither ever occupies a queue slot.
        """
        if not self._running:
            raise RuntimeError(
                "ShardedPredictionService is not running; use `with service:` "
                "or call start()"
            )
        future: Future = Future()
        self.metrics.inc("serve.requests")
        expected = self.model.series_length if self.validate else None
        if self.validate:
            values, code, message = validate_series(series, expected)
        else:
            values, code, message = np.asarray(series, dtype=float), None, None
        with self._submit_lock:
            if not self._running:
                raise RuntimeError(
                    "ShardedPredictionService is not running; use "
                    "`with service:` or call start()"
                )
            request_id = self._new_id()
            if code is not None:
                self.metrics.inc("serve.invalid")
                self.flight.record(
                    FlightRecord(
                        request_id=request_id,
                        status=ResultStatus.INVALID.value,
                        reason="invalid",
                        error_code=code,
                        error_message=message,
                    )
                )
                _log.warning(
                    "request rejected at validation",
                    extra={"request_id": request_id, "error_code": code},
                )
                future.set_result(
                    PredictionResult(
                        request_id=request_id,
                        status=ResultStatus.INVALID,
                        error_code=code,
                        error_message=message,
                        model_version=self.handle.version,
                    )
                )
                return future
            if deadline_ms is None:
                deadline_ms = self.default_deadline_ms
            now = time.monotonic()
            request = PredictionRequest(
                series=values,
                request_id=request_id,
                deadline=None if deadline_ms is None else now + deadline_ms / 1000.0,
                enqueued_at=now,
            )
            with self._lock:
                shard = self._route()
                if shard is not None:
                    admitted, why = self._admit(shard)
                else:
                    admitted, why = False, "no live shard"
                if admitted:
                    self._pending[request_id] = _Pending(
                        request, future, shard.shard_id
                    )
                    self._inflight[shard.shard_id] += 1
            if not admitted:
                self.metrics.inc("serve.overload")
                self.flight.record(
                    FlightRecord(
                        request_id=request_id,
                        status=ResultStatus.OVERLOAD.value,
                        reason="overload",
                        error_code="over-capacity",
                        error_message=why,
                    )
                )
                _log.warning(
                    "request shed by admission control",
                    extra={"request_id": request_id, "why": why},
                )
                future.set_result(
                    PredictionResult(
                        request_id=request_id,
                        status=ResultStatus.OVERLOAD,
                        error_code="over-capacity",
                        error_message=why,
                        model_version=self.handle.version,
                    )
                )
                return future
            self.metrics.add_gauge("serve.queue_depth", 1)
            self.metrics.add_gauge(
                shard_metric("serve.queue_depth", shard.shard_id), 1
            )
            self.metrics.inc(shard_metric("serve.requests", shard.shard_id))
            shard.request_q.put(request)
        return future

    def predict_one(
        self, series, *, deadline_ms: float | None = None, wait_s: float | None = None
    ) -> PredictionResult:
        """Submit one series and block for its typed result."""
        return self.submit(series, deadline_ms=deadline_ms).result(timeout=wait_s)

    def predict_many(
        self, X, *, deadline_ms: float | None = None, wait_s: float | None = None
    ) -> list[PredictionResult]:
        """Submit every row of ``X`` and block for all results, in order.

        Rows are submitted individually (never forced through one
        rectangular array), so ragged batches yield per-row typed
        ``INVALID`` results — same contract as the single-process
        service.
        """
        futures = [self.submit(row, deadline_ms=deadline_ms) for row in X]
        return [future.result(timeout=wait_s) for future in futures]

    def predict(self, X) -> np.ndarray:
        """Label array for a clean batch — the RPMClassifier.predict shape."""
        results = self.predict_many(X)
        bad = [r for r in results if not r.ok]
        if bad:
            first = bad[0]
            raise RuntimeError(
                f"{len(bad)}/{len(results)} requests failed; first: "
                f"{first.status.value} ({first.error_code or first.error_message})"
            )
        return np.array([r.label for r in results])

    # -- collector / monitor ---------------------------------------------------

    def _collect(self) -> None:
        """Resolve futures by sweeping every shard's result queue.

        Per-shard queues are drained with non-blocking gets: a sweep
        that finds nothing sleeps briefly, one that finds messages
        drains greedily. A corrupted channel (worker killed mid-write)
        raises out of ``get_nowait`` — the channel is simply skipped;
        its shard's unresolved requests come back via re-dispatch.
        """
        while True:
            got_any = False
            for shard in self._shards:
                result_q = shard.result_q
                if result_q is None:
                    continue
                while True:
                    try:
                        msg = result_q.get_nowait()
                    except queue_mod.Empty:
                        break
                    except Exception:  # pragma: no cover - corrupt channel
                        break
                    got_any = True
                    self._dispatch(msg)
            if not got_any:
                if self._stopping.is_set():
                    return
                self._stopping.wait(0.002)

    def _dispatch(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "res":
            _kind, shard_id, _gen, result, queue_wait_s = msg
            self._resolve(shard_id, result, queue_wait_s)
        elif kind == "batch":
            _kind, shard_id, _gen, size, seconds = msg
            self.metrics.inc("serve.batches")
            self.metrics.inc(shard_metric("serve.batches", shard_id))
            self.metrics.observe("serve.batch_size", size)
            if size > 0 and seconds > 0.0:
                per_req = seconds / size
                with self._lock:
                    if self._service_ewma_s is None:
                        self._service_ewma_s = per_req
                    else:
                        self._service_ewma_s = (
                            0.8 * self._service_ewma_s + 0.2 * per_req
                        )
        elif kind == "ready":
            _kind, shard_id, gen = msg
            with self._lock:
                shard = self._shards[shard_id]
                if gen == shard.generation:
                    shard.ready = True
                    shard.crashes = 0
                    shard.state = "up"
                all_ready = all(s.ready for s in self._shards)
            if all_ready:
                self._ready_event.set()
        elif kind == "stopped":
            _kind, shard_id, gen = msg
            with self._lock:
                shard = self._shards[shard_id]
                if gen == shard.generation and shard.state == "draining":
                    shard.state = "stopped"

    def _resolve(self, shard_id: int, result: PredictionResult, queue_wait_s) -> None:
        with self._lock:
            entry = self._pending.pop(result.request_id, None)
        if entry is None:
            # Duplicate from a re-dispatch race (the original worker
            # answered right before it was declared dead) — the first
            # result won; drop this one.
            return
        self._account_dequeue(entry.shard)
        self.metrics.observe("serve.latency_seconds", result.latency_ms / 1000.0)
        self.metrics.observe(
            shard_metric("serve.latency_seconds", shard_id), result.latency_ms / 1000.0
        )
        if queue_wait_s is not None:
            self.metrics.observe("serve.queue_wait_seconds", queue_wait_s)
        if result.status is ResultStatus.TIMEOUT:
            self.metrics.inc("serve.deadline_misses")
        elif result.status is ResultStatus.ERROR:
            self.metrics.inc("serve.errors")
        elif result.deadline_missed:
            self.metrics.inc("serve.deadline_misses")
        entry.future.set_result(result)
        self._record_flight(entry.request, result, queue_wait_s)
        # Shadow mirroring happens here on the collector thread, after
        # the future resolved — off the request latency path.
        shadow = self.shadow
        if shadow is not None and result.status is ResultStatus.OK:
            shadow.offer(
                result.request_id,
                entry.request.series,
                result.label,
                result.latency_ms,
            )
        # Drift ingestion also happens here on the collector thread:
        # per-shard feature rows are offered with their shard tag, and
        # the monitor aggregates the per-shard sketches by merge.
        drift = self.drift
        if drift is not None and result.status is ResultStatus.OK:
            if result.features is not None:
                drift.observe(
                    result.request_id,
                    entry.request.series,
                    result.features,
                    batch_id=result.batch_id,
                    shard=result.shard,
                )

    def _record_flight(self, request, result, queue_wait_s) -> None:
        if not self.flight.enabled:
            return
        if result.status is ResultStatus.OK and not result.deadline_missed:
            if not self.slow_ms or result.latency_ms < self.slow_ms:
                return
            reason = "slow"
        elif result.status is ResultStatus.TIMEOUT:
            reason = "timeout"
        elif result.status is ResultStatus.ERROR:
            reason = "error"
        else:
            reason = "late"
        slack_ms = None
        if request.deadline is not None:
            finished = request.enqueued_at + result.latency_ms / 1000.0
            slack_ms = (request.deadline - finished) * 1000.0
        self.flight.record(
            FlightRecord(
                request_id=result.request_id,
                status=result.status.value,
                reason=reason,
                batch_id=result.batch_id,
                shard=result.shard,
                queue_wait_ms=0.0 if queue_wait_s is None else queue_wait_s * 1000.0,
                latency_ms=result.latency_ms,
                deadline_slack_ms=slack_ms,
                error_code=result.error_code,
                error_message=result.error_message,
            )
        )
        _log.log(
            logging.ERROR if reason == "error" else logging.WARNING,
            "request %s",
            reason,
            extra={
                "request_id": result.request_id,
                "batch_id": result.batch_id,
                "shard": result.shard,
                "status": result.status.value,
                "latency_ms": round(result.latency_ms, 3),
            },
        )

    def _monitor_loop(self) -> None:
        """Detect dead workers and respawn them with zero request loss."""
        while not self._stopping.is_set():
            if self._running:
                for shard in self._shards:
                    if (
                        shard.state in ("starting", "up")
                        and shard.process is not None
                        and not shard.process.is_alive()
                    ):
                        self._revive(shard, reason="death")
            self._stopping.wait(0.1)

    def _revive(self, shard: _ShardState, *, reason: str) -> None:
        """Respawn one shard and re-dispatch its unresolved requests.

        A shard whose worker keeps dying before ever reaching ready is
        crash-looping — something systemic (unimportable environment,
        corrupt bank), not a transient kill — so after
        :data:`_MAX_CRASH_RESPAWNS` consecutive such deaths the shard is
        marked dead and its requests fail over to the surviving shards
        instead of feeding the loop.
        """
        if reason == "death":
            self.metrics.inc("serve.worker_deaths")
            shard.crashes = 0 if shard.ready else shard.crashes + 1
            _log.error(
                "shard worker died",
                extra={"shard": shard.shard_id, "generation": shard.generation},
            )
        old_request_q = shard.request_q
        old_result_q = shard.result_q
        give_up = shard.crashes >= _MAX_CRASH_RESPAWNS
        if give_up:
            with self._lock:
                shard.state = "dead"
                shard.process = None
                shard.request_q = None
                shard.result_q = None
            _log.error(
                "shard crash-looped before ready; marking dead",
                extra={"shard": shard.shard_id, "crashes": shard.crashes},
            )
        else:
            self._spawn(shard)
        for old_q in (old_request_q, old_result_q):
            if old_q is not None:
                old_q.close()
                old_q.cancel_join_thread()
        with self._lock:
            orphans = sorted(
                (
                    entry
                    for entry in self._pending.values()
                    if entry.shard == shard.shard_id
                ),
                key=lambda entry: entry.request.enqueued_at,
            )
        for entry in orphans:
            self.metrics.inc("serve.redispatched")
            if not give_up:
                shard.request_q.put(entry.request)
                continue
            # Fail over to any surviving shard; with none left, answer
            # with a typed error rather than letting the future dangle.
            with self._lock:
                target = self._route()
                if target is not None:
                    entry.shard = target.shard_id
                    self._inflight[shard.shard_id] = max(
                        0, self._inflight[shard.shard_id] - 1
                    )
                    self._inflight[target.shard_id] += 1
            if target is not None:
                target.request_q.put(entry.request)
            else:
                with self._lock:
                    self._pending.pop(entry.request.request_id, None)
                self._account_dequeue(entry.shard)
                entry.future.set_result(
                    PredictionResult(
                        request_id=entry.request.request_id,
                        status=ResultStatus.ERROR,
                        error_code="no-live-shard",
                        error_message="every shard worker crash-looped",
                        shard=shard.shard_id,
                        model_version=self.handle.version,
                    )
                )

    # -- maintenance -----------------------------------------------------------

    def recycle(self, shard_id: int, *, timeout_s: float = 30.0) -> None:
        """Gracefully recycle one worker: drain, respawn, re-attach.

        The old worker gets a stop sentinel and drains its queue (every
        already-accepted request is answered normally); routing skips
        the shard while it drains; then a fresh worker is spawned on a
        fresh queue and any requests the old worker still left
        unresolved are re-dispatched. A worker that fails to drain
        within ``timeout_s`` is terminated — its unresolved requests
        are re-dispatched all the same, so no accepted request is lost
        either way.
        """
        if not self._running:
            raise RuntimeError("cannot recycle a stopped service")
        shard = self._shards[shard_id]
        with self._lock:
            if shard.state not in ("starting", "up"):
                return
            shard.state = "draining"
        self.metrics.inc("serve.worker_recycles")
        _log.info(
            "recycling shard worker",
            extra={"shard": shard_id, "generation": shard.generation},
        )
        process = shard.process
        if process is not None and process.is_alive():
            shard.request_q.put(None)
            process.join(timeout=timeout_s)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.terminate()
                process.join(timeout=5.0)
        self._revive(shard, reason="recycle")

    # -- introspection ---------------------------------------------------------

    def shard_states(self) -> list[dict]:
        """Live per-shard status (served on the admin ``/shards`` route)."""
        with self._lock:
            return [
                {
                    "shard": shard.shard_id,
                    "generation": shard.generation,
                    "pid": None if shard.process is None else shard.process.pid,
                    "alive": shard.process is not None and shard.process.is_alive(),
                    "state": shard.state,
                    "inflight": self._inflight[shard.shard_id],
                }
                for shard in self._shards
            ]
